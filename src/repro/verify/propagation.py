"""Cross-core fault-propagation matrix for shared-L2 injections.

A flipped bit in the shared L2 is architecturally visible to *every* core
whose miss path reads through the corrupted line — not just the core that
wrote it.  This module measures that propagation directly: it runs the
same program twice on identically-constructed SMP machines (golden and
faulty), captures each core's committed-instruction trace, and reduces
the pair of traces per core to a verdict:

* ``observed``  — the core retired a different instruction stream or a
  different architectural effect after the injection point: the fault
  reached this core's architectural state.
* ``truncated`` — the core's trace is a clean prefix/extension of the
  golden one (typically the program crashed or timed out before this
  core finished): the fault changed how much the core ran, not what it
  computed while running.
* ``masked``    — the core's trace is bit-identical to golden: the fault
  was provably never consumed by this core.

The matrix is the SMP analogue of the single-core fault-effect
classifier, but keyed by *consuming core* instead of by terminal status —
it is what lets a test assert that a shared-L2 flip written by core 1 was
observed by core 0, which never executed the faulting access.

Determinism of the interleaver (see :mod:`repro.cpu.smp`) is what makes
the comparison exact: golden and faulty runs retire identical per-core
traces up to the first architecturally-consumed corrupted byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.classify import TIMEOUT_FACTOR
from repro.core.faults import FaultMask
from repro.core.injector import inject
from repro.errors import ConfigError
from repro.isa.program import Program
from repro.kernel.status import RunResult
from repro.cpu.config import DEFAULT_CONFIG, CoreConfig
from repro.cpu.smp import SMPSystem

#: Fault-free cycle budget for the golden trace run.
GOLDEN_MAX_CYCLES = 50_000_000

#: Extra cycles granted to the faulty run beyond TIMEOUT_FACTOR x golden.
FAULTY_SLACK_CYCLES = 10_000

#: One committed instruction's architectural effects, per core:
#: (pc, raw encoding, arch dest, dest value, store paddr, size, data).
TraceEntry = tuple


@dataclass
class CorePropagation:
    """One core's row of the propagation matrix."""

    core: int
    verdict: str                    #: "observed" | "truncated" | "masked"
    golden_commits: int
    faulty_commits: int
    #: Index of the first differing trace entry ("observed" only).
    divergence_index: int | None = None
    #: pc of the first differing committed instruction ("observed" only).
    divergence_pc: int | None = None


@dataclass
class PropagationReport:
    """Golden-vs-faulty comparison of one shared-structure injection."""

    mask: FaultMask
    inject_cycle: int
    cores: int
    golden: RunResult
    faulty: RunResult
    matrix: list[CorePropagation] = field(default_factory=list)

    def observed_cores(self) -> list[int]:
        """Cores whose committed architectural state the fault reached."""
        return [row.core for row in self.matrix if row.verdict == "observed"]

    def masked_cores(self) -> list[int]:
        """Cores that provably never consumed the corrupted bits."""
        return [row.core for row in self.matrix if row.verdict == "masked"]

    def row(self, core: int) -> CorePropagation:
        return self.matrix[core]


def _attach_tracers(smp: SMPSystem) -> list[list[TraceEntry]]:
    """Hook every core's commit stage into a per-core trace list.

    ``fresh_pipe`` carries the commit hook across worker respawns, so a
    core's trace spans every thread that ever ran on it.
    """
    traces: list[list[TraceEntry]] = [[] for _ in range(smp.ncores)]

    def hook_for(core_id: int):
        trace = traces[core_id]

        def on_commit(uop) -> None:
            pipe = smp.cores[core_id].pipe
            inst = uop.inst
            is_mem_write = inst.is_store or inst.is_amo
            trace.append((
                uop.pc,
                inst.raw,
                uop.arch_dest if uop.dest >= 0 else -1,
                pipe.prf.values[uop.dest] if uop.dest >= 0 else None,
                uop.paddr if is_mem_write else None,
                uop.mem_size if is_mem_write else None,
                uop.store_data if is_mem_write else None,
            ))

        return on_commit

    for k, bundle in enumerate(smp.cores):
        bundle.pipe.commit_hook = hook_for(k)
    return traces


def _judge(core: int, golden: list, faulty: list) -> CorePropagation:
    common = min(len(golden), len(faulty))
    for idx in range(common):
        if golden[idx] != faulty[idx]:
            return CorePropagation(
                core, "observed", len(golden), len(faulty),
                divergence_index=idx, divergence_pc=faulty[idx][0],
            )
    if len(golden) != len(faulty):
        return CorePropagation(core, "truncated", len(golden), len(faulty))
    return CorePropagation(core, "masked", len(golden), len(faulty))


def run_propagation(
    program: Program,
    mask,
    inject_cycle: int,
    core_cfg: CoreConfig = DEFAULT_CONFIG,
    cores: int = 2,
    max_cycles: int = GOLDEN_MAX_CYCLES,
) -> PropagationReport:
    """Build the cross-core propagation matrix for one injection.

    Runs *program* fault-free to capture per-core golden traces, then
    replays it on a fresh machine, injecting *mask* once the global clock
    reaches *inject_cycle*, and judges each core's faulty trace against
    its golden one.  The deterministic interleaver guarantees the two
    machines are bit-identical up to the injection instant.

    *mask* is either a :class:`FaultMask` or a callable
    ``mask(smp) -> FaultMask`` evaluated on the paused faulty machine at
    the injection instant — which is how a caller targets the L2 line
    that *actually holds* a given shared datum at that moment (e.g. via
    ``smp.l2.probe(paddr)``) instead of guessing cache geometry.
    """
    golden_smp = SMPSystem(core_cfg, cores)
    golden_traces = _attach_tracers(golden_smp)
    golden_smp.load(program)
    golden = golden_smp.run(max_cycles)

    if inject_cycle >= golden.cycles:
        raise ConfigError(
            f"inject_cycle {inject_cycle} is at or beyond the golden run's "
            f"end ({golden.cycles} cycles) — the fault would strike a "
            f"finished machine"
        )

    faulty_smp = SMPSystem(core_cfg, cores)
    faulty_traces = _attach_tracers(faulty_smp)
    faulty_smp.load(program)
    budget = TIMEOUT_FACTOR * golden.cycles + FAULTY_SLACK_CYCLES
    still_running = faulty_smp.run_until(inject_cycle, budget)
    if not still_running:
        raise ConfigError(
            f"faulty machine terminated before inject_cycle {inject_cycle} "
            f"— golden and faulty construction diverged"
        )
    if callable(mask):
        mask = mask(faulty_smp)
    inject(faulty_smp, mask)
    faulty = faulty_smp.run(budget)

    report = PropagationReport(
        mask=mask, inject_cycle=inject_cycle, cores=cores,
        golden=golden, faulty=faulty,
    )
    for k in range(cores):
        report.matrix.append(_judge(k, golden_traces[k], faulty_traces[k]))
    return report
