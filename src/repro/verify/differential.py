"""Differential execution: out-of-order system vs. ISA-level oracle.

Runs a program on both implementations at once and compares the
*committed architectural state* in lock step, one retired instruction at
a time:

* the retired-instruction stream itself (pc and encoding) — catches
  fetch, branch-resolution and squash bugs;
* every register writeback (architectural destination and value) —
  catches ALU, forwarding and renaming bugs;
* every retired memory store (physical address, size, data) — catches
  store-queue, translation and cache-write bugs;
* the terminal state (status, crash reason and pc, exception detail,
  exit code, syscall output, retired-instruction count) — catches
  precise-exception and syscall bugs.

Cycle counts are deliberately *not* compared: the oracle has no timing
model, and timing is exactly the freedom the out-of-order core is
allowed.

The comparison rides the core's commit hook, so a divergence surfaces as
:class:`~repro.errors.DivergenceError` at the first wrong commit — with
disassembly and the last few good commits as context — rather than as an
end-of-run state diff millions of instructions later.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import DivergenceError
from repro.isa.disasm import disassemble
from repro.isa.program import Program
from repro.kernel.status import RunResult
from repro.cpu.config import DEFAULT_CONFIG, CoreConfig
from repro.cpu.system import System
from repro.verify.invariants import InvariantChecker
from repro.verify.reference import (
    CommitRecord,
    ReferenceExecutor,
    SMPReferenceExecutor,
)

#: Generous fault-free cycle budget (same spirit as campaign golden runs).
DIFF_MAX_CYCLES = 50_000_000

#: Retired instructions kept as context around a divergence report.
CONTEXT_DEPTH = 8


@dataclass
class DifferentialReport:
    """Outcome of one clean differential run."""

    committed: int           #: retired instructions compared
    result: RunResult        #: the out-of-order system's terminal result
    reference: RunResult     #: the oracle's terminal result


def _describe(record: CommitRecord) -> str:
    return repr(record)


def _divergence(
    kind: str,
    detail: str,
    recent: deque,
    expected: CommitRecord | None = None,
    actual: CommitRecord | None = None,
) -> DivergenceError:
    lines = [f"divergence ({kind}): {detail}"]
    if expected is not None:
        lines.append(f"  oracle   : {_describe(expected)}")
    if actual is not None:
        lines.append(f"  ooo core : {_describe(actual)}")
    if recent:
        lines.append("  last commits in agreement:")
        lines.extend(f"    {_describe(rec)}" for rec in recent)
    return DivergenceError("\n".join(lines))


def _machine_record(core, uop, index: int) -> CommitRecord:
    """Build the machine-side commit record for one retired uop.

    An AMO is both a load (its register result is the old memory word) and
    a store (``uop.store_data`` holds the stored value at commit), so its
    record carries both effects, matching the oracle's.
    """
    inst = uop.inst
    is_mem_write = inst.is_store or inst.is_amo
    return CommitRecord(
        index, uop.pc, inst.raw,
        arch_dest=uop.arch_dest if uop.dest >= 0 else -1,
        value=core.prf.values[uop.dest] if uop.dest >= 0 else None,
        store_paddr=uop.paddr if is_mem_write else None,
        store_size=uop.mem_size if is_mem_write else None,
        store_data=uop.store_data if is_mem_write else None,
    )


def _compare_records(
    expected: CommitRecord,
    actual: CommitRecord,
    recent: deque,
    compared: list,
) -> None:
    if (expected.pc, expected.raw) != (actual.pc, actual.raw):
        raise _divergence(
            "instruction stream",
            f"retired instruction #{compared[0]} differs",
            recent, expected, actual,
        )
    if (expected.arch_dest, expected.value) != \
            (actual.arch_dest, actual.value):
        raise _divergence(
            "register writeback",
            f"instruction #{compared[0]} at 0x{actual.pc:08x} "
            f"({disassemble(actual.raw)}) wrote a different register "
            f"result",
            recent, expected, actual,
        )
    if expected.store_effect() != actual.store_effect():
        raise _divergence(
            "memory store",
            f"instruction #{compared[0]} at 0x{actual.pc:08x} "
            f"({disassemble(actual.raw)}) stored differently",
            recent, expected, actual,
        )
    compared[0] += 1
    recent.append(expected)


def _compare_terminal(result: RunResult, ref_result: RunResult, recent) -> None:
    mismatches = []
    for field_name in (
        "status", "crash_reason", "crash_pc", "detail",
        "exit_code", "output", "instructions",
    ):
        ours = getattr(result, field_name)
        theirs = getattr(ref_result, field_name)
        if ours != theirs:
            mismatches.append(f"{field_name}: core={ours!r} oracle={theirs!r}")
    if mismatches:
        raise _divergence("terminal state", "; ".join(mismatches), recent)


def run_differential(
    program: Program,
    core_cfg: CoreConfig = DEFAULT_CONFIG,
    max_cycles: int = DIFF_MAX_CYCLES,
    max_steps: int | None = None,
    audit: bool = False,
) -> DifferentialReport:
    """Run *program* on both implementations, comparing every commit.

    Raises :class:`~repro.errors.DivergenceError` at the first mismatch.
    With *audit* set, additionally runs the whole-system structural audit
    (cache/TLB consistency) on the final fault-free state.
    """
    reference = ReferenceExecutor(program, core_cfg)
    system = System(core_cfg)
    system.load(program)
    core = system.core

    recent: deque = deque(maxlen=CONTEXT_DEPTH)
    compared = [0]

    def on_commit(uop) -> None:
        actual = _machine_record(core, uop, compared[0])
        expected = reference.step()
        if expected is None:
            raise _divergence(
                "instruction stream",
                f"the core retired instruction #{compared[0]} but the "
                f"oracle's run already terminated "
                f"({reference.result.status.name} after "
                f"{reference.retired} instructions)",
                recent, actual=actual,
            )
        _compare_records(expected, actual, recent, compared)

    core.commit_hook = on_commit
    try:
        result = system.run(max_cycles, max_steps=max_steps)
    finally:
        core.commit_hook = None

    if reference.result is None:
        extra = reference.step()
        if extra is not None:
            raise _divergence(
                "instruction stream",
                f"the core terminated ({result.status.name} after "
                f"{compared[0]} retired instructions) but the oracle "
                f"still retires more",
                recent, expected=extra,
            )
    ref_result = reference.result
    assert ref_result is not None

    _compare_terminal(result, ref_result, recent)

    if audit:
        InvariantChecker().check_system(system)

    return DifferentialReport(
        committed=compared[0], result=result, reference=ref_result,
    )


def run_smp_differential(
    program: Program,
    core_cfg: CoreConfig = DEFAULT_CONFIG,
    cores: int = 2,
    max_cycles: int = DIFF_MAX_CYCLES,
    max_steps: int | None = None,
    audit: bool = False,
) -> DifferentialReport:
    """Run *program* on the N-core machine against the multi-core oracle.

    The oracle is *externally scheduled*: it replays the machine's observed
    per-core commit order (the sequential-consistency serialization the SMP
    system enforces), so every retired instruction on every core is
    compared exactly — for any program, racy or not.  Worker park events
    (HALT) are sequenced into the same stream so the oracle's idle-core
    bookkeeping, and hence its SPAWN placement, stays lock-step with the
    machine's.

    Raises :class:`~repro.errors.DivergenceError` at the first mismatch.
    With *audit* set, additionally audits the final SMP state (coherence
    ownership, per-core caches and TLBs).
    """
    from repro.cpu.smp import SMPSystem

    reference = SMPReferenceExecutor(program, core_cfg, cores)
    smp = SMPSystem(core_cfg, cores)
    smp.load(program)

    recent: deque = deque(maxlen=CONTEXT_DEPTH)
    compared = [0]
    #: ("commit", core, record) and ("park", core) events in machine order.
    events: list = []

    def hook_for(core_id: int):
        def on_commit(uop) -> None:
            pipe = smp.cores[core_id].pipe
            events.append(
                ("commit", core_id, _machine_record(pipe, uop, compared[0]))
            )
        return on_commit

    for k, bundle in enumerate(smp.cores):
        bundle.pipe.commit_hook = hook_for(k)
    smp.park_hook = lambda core_id: events.append(("park", core_id))

    def drain() -> None:
        while events:
            event = events.pop(0)
            if event[0] == "commit":
                _, core_id, actual = event
                expected = reference.step_core(core_id)
                if expected is None:
                    raise _divergence(
                        "instruction stream",
                        f"core {core_id} retired instruction "
                        f"#{compared[0]} but the oracle's core is "
                        f"terminated or parked",
                        recent, actual=actual,
                    )
                _compare_records(expected, actual, recent, compared)
            else:
                _, core_id = event
                extra = reference.step_core(core_id)
                if extra is not None or reference.contexts[core_id].running:
                    raise _divergence(
                        "thread lifecycle",
                        f"core {core_id} halted on the machine but the "
                        f"oracle's core did not",
                        recent, expected=extra,
                    )

    deadlock_window = core_cfg.deadlock_window
    steps = 0
    while smp.result is None:
        smp.step()
        steps += 1
        drain()
        if smp.result is not None:
            break
        if max_steps is not None and steps > max_steps:
            from repro.errors import WatchdogTimeout

            raise WatchdogTimeout(
                f"step watchdog: {steps} quanta executed at global cycle "
                f"{smp.cycle} — simulator livelock"
            )
        if (
            smp.cycle >= max_cycles
            or smp.cycle - smp._last_commit_cycle() > deadlock_window
        ):
            raise _divergence(
                "terminal state",
                f"machine did not terminate within {smp.cycle} cycles "
                f"(the oracle cannot be driven past a hang)",
                recent,
            )
    result = smp.result
    drain()

    # Consume the machine's terminal instruction on the oracle (it never
    # produced a commit record) and compare terminal states.
    if reference.result is None:
        extra = reference.step_core(smp.result_core)
        if extra is not None:
            raise _divergence(
                "instruction stream",
                f"the machine terminated ({result.status.name} after "
                f"{compared[0]} retired instructions) but the oracle "
                f"still retires more on core {smp.result_core}",
                recent, expected=extra,
            )
    ref_result = reference.result
    if ref_result is None:
        raise _divergence(
            "terminal state",
            f"machine ended with {result.status.name} but the oracle's "
            f"core {smp.result_core} has not terminated",
            recent,
        )
    _compare_terminal(result, ref_result, recent)

    if audit:
        InvariantChecker().check_smp(smp)

    return DifferentialReport(
        committed=compared[0], result=result, reference=ref_result,
    )


# -- cached workload-level verification ---------------------------------------
#
# The campaign layer calls these once per (workload, config) and once per
# Masked sample; both consume no RNG, so enabling --verify cannot perturb
# campaign statistics.

def _bounded_cache(maxsize: int):
    from repro.core.campaign import _BoundedCache

    return _BoundedCache(maxsize=maxsize)


_REFERENCE_CACHE = None
_VERIFIED_CACHE = None


def reference_run(
    workload, core_cfg: CoreConfig = DEFAULT_CONFIG, cores: int = 1
) -> RunResult:
    """The oracle's terminal result for a workload (cached).

    At *cores* > 1 the multi-core oracle runs its self-scheduled
    round-robin over the workload's parallel program: the workload
    contract (fixed task counts, join-before-read) makes the terminal
    output interleaving-independent, so this is comparable against any
    legal execution of the machine.  Cache keys stay unchanged for
    ``cores == 1``.
    """
    global _REFERENCE_CACHE
    if _REFERENCE_CACHE is None:
        _REFERENCE_CACHE = _bounded_cache(maxsize=16)
    key = (workload.name, core_cfg) if cores == 1 \
        else (workload.name, core_cfg, cores)
    cached = _REFERENCE_CACHE.get(key)
    if cached is not None:
        return cached
    if cores == 1:
        result = ReferenceExecutor(workload.program(), core_cfg).run()
    else:
        result = SMPReferenceExecutor(
            workload.program_for(cores), core_cfg, cores
        ).run()
    _REFERENCE_CACHE.put(key, result)
    return result


def verify_workload(
    workload, core_cfg: CoreConfig = DEFAULT_CONFIG, cores: int = 1
) -> None:
    """Full lock-step differential check of a workload's fault-free run.

    Cached per (workload, config): a --verify campaign pays for one
    differential run per cell configuration, not per sample.  Also
    cross-checks both implementations against the workload's pure-Python
    ``expected_output``, closing the triangle of three independent
    implementations.
    """
    global _VERIFIED_CACHE
    if _VERIFIED_CACHE is None:
        _VERIFIED_CACHE = _bounded_cache(maxsize=64)
    key = (workload.name, core_cfg) if cores == 1 \
        else (workload.name, core_cfg, cores)
    if _VERIFIED_CACHE.get(key):
        return
    if cores == 1:
        report = run_differential(workload.program(), core_cfg, audit=True)
    else:
        report = run_smp_differential(
            workload.program_for(cores), core_cfg, cores, audit=True
        )
    if report.result.output != workload.expected_output:
        raise DivergenceError(
            f"workload {workload.name}: both implementations agree but "
            f"their output differs from the pure-Python reference "
            f"(got {report.result.output!r}, "
            f"expected {workload.expected_output!r})"
        )
    _VERIFIED_CACHE.put(key, True)


def check_masked_run(
    workload,
    result: RunResult,
    core_cfg: CoreConfig = DEFAULT_CONFIG,
    cores: int = 1,
) -> None:
    """Assert a Masked injection outcome matches the oracle's architecture.

    A Masked classification claims the fault had *no architectural
    effect*; the observable architectural contract of a finished run is
    its syscall output and exit code, so those must equal the oracle's.
    (Internal state legitimately differs — a corrupted-but-dead cache
    line is still Masked.)
    """
    ref = reference_run(workload, core_cfg, cores)
    problems = []
    if result.output != ref.output:
        problems.append(
            f"output: got {result.output!r}, oracle {ref.output!r}"
        )
    if result.exit_code != ref.exit_code:
        problems.append(
            f"exit_code: got {result.exit_code}, oracle {ref.exit_code}"
        )
    if problems:
        raise DivergenceError(
            f"workload {workload.name}: run classified Masked but its "
            f"architectural state differs from the oracle — "
            + "; ".join(problems)
        )
