"""repro — Multi-Bit Upset Vulnerability Analysis of an out-of-order CPU.

A full-stack reproduction of Chatzidimitriou et al., "Multi-Bit Upsets
Vulnerability Analysis of Modern Microprocessors" (IISWC 2019):
microarchitecture-level fault injection with spatial multi-bit fault
masks, five-way outcome classification, and AVF/FIT analysis across
technology nodes.

Packages:

* :mod:`repro.isa`       — 32-bit RISC ISA, assembler, disassembler
* :mod:`repro.minic`     — MiniC compiler (C subset → ISA)
* :mod:`repro.mem`       — caches, TLBs, paging, physical memory
* :mod:`repro.kernel`    — loader, syscalls, crash semantics
* :mod:`repro.cpu`       — out-of-order core, full system, tracing
* :mod:`repro.workloads` — the 15 MiBench-equivalent benchmarks
* :mod:`repro.core`      — fault injection, campaigns, AVF/FIT, reports
"""

__version__ = "1.0.0"
