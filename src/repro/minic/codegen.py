"""MiniC code generation to repro assembly text.

Conventions (the "MiniC ABI"):

* arguments in ``r0``-``r3``, return value in ``r0``;
* ``r4``-``r11`` are expression temporaries, caller-saved — live values are
  spilled to the frame around calls;
* ``sp`` (r13) is the only frame reference; each function's frame is
  ``[param slots][local slots][16 spill slots][saved lr]``;
* every local and parameter lives in a stack slot (loaded/stored at each
  use) — unoptimised, like ``-O0`` C, which keeps dataflow through the
  injectable L1D and register file rich.

Expression evaluation keeps a compile-time *value stack* whose entries live
in temp registers until register pressure (or a function call) forces them
into spill slots.  The invariant: no raw register is ever held across the
generation of a sub-expression — everything live is on the value stack, so
call-site spilling can always rescue it.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.minic.ast_nodes import (
    AssignStmt, Binary, Block, BreakStmt, Call, ContinueStmt, DeclStmt,
    Expr, ExprStmt, ForStmt, Func, GlobalVar, IfStmt, Index, IntLit,
    Module, ReturnStmt, Stmt, Unary, VarRef, WhileStmt,
)
from repro.minic.parser import parse
from repro.minic.sema import INTRINSICS, FuncScope, ModuleInfo, analyse

TEMP_REGS = ["r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11"]
NUM_SPILL_SLOTS = 16

_SYSCALL_OF = {"exit": 0, "putw": 1, "putc": 2, "putd": 3}

#: comparison -> (mnemonic, swap operands) when branching on TRUE.
_BRANCH_TRUE = {
    "<": ("blt", False), ">": ("blt", True),
    "<=": ("bge", True), ">=": ("bge", False),
    "==": ("beq", False), "!=": ("bne", False),
}
#: comparison -> (mnemonic, swap operands) when branching on FALSE.
_BRANCH_FALSE = {
    "<": ("bge", False), ">": ("bge", True),
    "<=": ("blt", True), ">=": ("blt", False),
    "==": ("bne", False), "!=": ("beq", False),
}

_ALU_MNEMONIC = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    "&": "and", "|": "orr", "^": "eor", "<<": "lsl", ">>": "asr",
}


class _Labels:
    """Module-wide unique label factory."""

    def __init__(self) -> None:
        self._counter = 0

    def new(self, hint: str) -> str:
        self._counter += 1
        return f"L{self._counter}_{hint}"


class _FuncGen:
    """Code generation state for one function body."""

    def __init__(
        self,
        func: Func,
        info: ModuleInfo,
        labels: _Labels,
        spawned: set[str] | None = None,
    ) -> None:
        self.func = func
        self.info = info
        self.labels = labels
        self.lines: list[str] = []
        self.scope: FuncScope = info.scopes[func.name]
        #: Module-wide set of spawn targets needing a __spawn_<fn> thunk.
        self.spawned = spawned if spawned is not None else set()

        slot_names = self.scope.slot_names()
        self.slot_of = {name: i * 4 for i, name in enumerate(slot_names)}
        self._spill_base = 4 * len(slot_names)
        self.frame_size = self._spill_base + 4 * NUM_SPILL_SLOTS + 4
        if self.frame_size % 8:
            self.frame_size += 4

        self.free_regs = list(TEMP_REGS)
        self.free_spills = list(range(NUM_SPILL_SLOTS))
        # Value stack entries: ("reg", name) or ("spill", index); oldest first.
        self.vstack: list[tuple[str, object]] = []
        self.loop_stack: list[tuple[str, str]] = []  # (continue, break) labels
        self.epilogue = labels.new(f"epi_{func.name}")

    # -- emission helpers ------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    # -- register/value-stack management -----------------------------------------

    def _alloc_reg(self) -> str:
        """Claim a free temp register, spilling the oldest live value if needed."""
        if self.free_regs:
            return self.free_regs.pop()
        for pos, (kind, payload) in enumerate(self.vstack):
            if kind == "reg":
                slot = self._alloc_spill()
                self.emit(f"STR {payload}, [sp, #{self._spill_off(slot)}]")
                self.vstack[pos] = ("spill", slot)
                return str(payload)
        raise CompileError(
            f"{self.func.name}: expression too complex (register pressure)"
        )

    def _free_reg(self, reg: str) -> None:
        self.free_regs.append(reg)

    def _alloc_spill(self) -> int:
        if not self.free_spills:
            raise CompileError(
                f"{self.func.name}: expression too complex (spill pressure)"
            )
        return self.free_spills.pop()

    def _spill_off(self, slot: int) -> int:
        return self._spill_base + 4 * slot

    def _push_reg(self, reg: str) -> None:
        self.vstack.append(("reg", reg))

    def _pop_to_reg(self) -> str:
        """Pop the top value into a register owned by the caller."""
        kind, payload = self.vstack.pop()
        if kind == "reg":
            return str(payload)
        slot = int(payload)  # type: ignore[arg-type]
        reg = self._alloc_reg()
        self.emit(f"LDR {reg}, [sp, #{self._spill_off(slot)}]")
        self.free_spills.append(slot)
        return reg

    def _spill_all(self) -> None:
        """Force every live value into its spill slot (around calls)."""
        for pos, (kind, payload) in enumerate(self.vstack):
            if kind == "reg":
                slot = self._alloc_spill()
                self.emit(f"STR {payload}, [sp, #{self._spill_off(slot)}]")
                self._free_reg(str(payload))
                self.vstack[pos] = ("spill", slot)

    # -- function skeleton -----------------------------------------------------------

    def generate(self) -> list[str]:
        self.label(self.func.name)
        self.emit(f"ADDI sp, sp, #-{self.frame_size}")
        self.emit(f"STR lr, [sp, #{self.frame_size - 4}]")
        for i, param in enumerate(self.func.params):
            self.emit(f"STR r{i}, [sp, #{self.slot_of[param.name]}]")
        self.gen_block(self.func.body)
        self.label(self.epilogue)
        self.emit(f"LDR lr, [sp, #{self.frame_size - 4}]")
        self.emit(f"ADDI sp, sp, #{self.frame_size}")
        self.emit("RET")
        return self.lines

    # -- statements ----------------------------------------------------------------------

    def gen_block(self, block: Block) -> None:
        for stmt in block.stmts:
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, DeclStmt):
            if stmt.init is not None:
                self.gen_expr(stmt.init)
                reg = self._pop_to_reg()
                self.emit(f"STR {reg}, [sp, #{self.slot_of[stmt.name]}]")
                self._free_reg(reg)
        elif isinstance(stmt, AssignStmt):
            self._gen_assign(stmt)
        elif isinstance(stmt, IfStmt):
            self._gen_if(stmt)
        elif isinstance(stmt, WhileStmt):
            self._gen_while(stmt)
        elif isinstance(stmt, ForStmt):
            self._gen_for(stmt)
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                self.gen_expr(stmt.value)
                reg = self._pop_to_reg()
                self.emit(f"MOV r0, {reg}")
                self._free_reg(reg)
            self.emit(f"B {self.epilogue}")
        elif isinstance(stmt, BreakStmt):
            self.emit(f"B {self.loop_stack[-1][1]}")
        elif isinstance(stmt, ContinueStmt):
            self.emit(f"B {self.loop_stack[-1][0]}")
        elif isinstance(stmt, ExprStmt):
            assert stmt.expr is not None
            if isinstance(stmt.expr, Call):
                pushed = self._gen_call(stmt.expr, want_value=False)
                if pushed:
                    self._free_reg(self._pop_to_reg())
            else:
                self.gen_expr(stmt.expr)
                self._free_reg(self._pop_to_reg())
        else:  # pragma: no cover - sema rejects anything else
            raise CompileError(f"line {stmt.line}: unhandled statement")

    def _gen_assign(self, stmt: AssignStmt) -> None:
        target = stmt.target
        assert stmt.value is not None
        if isinstance(target, VarRef):
            name = target.name
            if name in self.slot_of:
                self.gen_expr(stmt.value)
                reg = self._pop_to_reg()
                self.emit(f"STR {reg}, [sp, #{self.slot_of[name]}]")
                self._free_reg(reg)
            else:  # global scalar
                self.gen_expr(stmt.value)
                value = self._pop_to_reg()
                addr = self._alloc_reg()
                self.emit(f"LA {addr}, {name}")
                self.emit(f"STR {value}, [{addr}]")
                self._free_reg(addr)
                self._free_reg(value)
            return
        assert isinstance(target, Index)
        byte_elem = self._push_element_addr(target)
        self.gen_expr(stmt.value)
        value = self._pop_to_reg()
        addr = self._pop_to_reg()
        self.emit(f"{'STRB' if byte_elem else 'STR'} {value}, [{addr}]")
        self._free_reg(addr)
        self._free_reg(value)

    def _gen_if(self, stmt: IfStmt) -> None:
        assert stmt.cond is not None and stmt.then is not None
        if stmt.els is None:
            end = self.labels.new("endif")
            self.gen_branch(stmt.cond, end, branch_if=False)
            self.gen_block(stmt.then)
            self.label(end)
            return
        other = self.labels.new("else")
        end = self.labels.new("endif")
        self.gen_branch(stmt.cond, other, branch_if=False)
        self.gen_block(stmt.then)
        self.emit(f"B {end}")
        self.label(other)
        if isinstance(stmt.els, Block):
            self.gen_block(stmt.els)
        else:
            self.gen_stmt(stmt.els)
        self.label(end)

    def _gen_while(self, stmt: WhileStmt) -> None:
        assert stmt.cond is not None and stmt.body is not None
        cond = self.labels.new("wcond")
        body = self.labels.new("wbody")
        end = self.labels.new("wend")
        self.emit(f"B {cond}")
        self.label(body)
        self.loop_stack.append((cond, end))
        self.gen_block(stmt.body)
        self.loop_stack.pop()
        self.label(cond)
        self.gen_branch(stmt.cond, body, branch_if=True)
        self.label(end)

    def _gen_for(self, stmt: ForStmt) -> None:
        assert stmt.body is not None
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        cond = self.labels.new("fcond")
        body = self.labels.new("fbody")
        cont = self.labels.new("fcont")
        end = self.labels.new("fend")
        self.emit(f"B {cond}")
        self.label(body)
        self.loop_stack.append((cont, end))
        self.gen_block(stmt.body)
        self.loop_stack.pop()
        self.label(cont)
        if stmt.post is not None:
            self.gen_stmt(stmt.post)
        self.label(cond)
        if stmt.cond is None:
            self.emit(f"B {body}")
        else:
            self.gen_branch(stmt.cond, body, branch_if=True)
        self.label(end)

    # -- conditions ---------------------------------------------------------------------

    def gen_branch(self, expr: Expr, target: str, branch_if: bool) -> None:
        """Emit a branch to *target* taken iff bool(expr) == branch_if."""
        if isinstance(expr, IntLit):
            if bool(expr.value) == branch_if:
                self.emit(f"B {target}")
            return
        if isinstance(expr, Unary) and expr.op == "!":
            assert expr.operand is not None
            self.gen_branch(expr.operand, target, not branch_if)
            return
        if isinstance(expr, Binary) and expr.op in _BRANCH_TRUE:
            table = _BRANCH_TRUE if branch_if else _BRANCH_FALSE
            mnemonic, swap = table[expr.op]
            assert expr.lhs is not None and expr.rhs is not None
            self.gen_expr(expr.lhs)
            self.gen_expr(expr.rhs)
            rhs = self._pop_to_reg()
            lhs = self._pop_to_reg()
            a, b = (rhs, lhs) if swap else (lhs, rhs)
            self.emit(f"{mnemonic.upper()} {a}, {b}, {target}")
            self._free_reg(lhs)
            self._free_reg(rhs)
            return
        if isinstance(expr, Binary) and expr.op == "&&":
            assert expr.lhs is not None and expr.rhs is not None
            if branch_if:
                skip = self.labels.new("and")
                self.gen_branch(expr.lhs, skip, branch_if=False)
                self.gen_branch(expr.rhs, target, branch_if=True)
                self.label(skip)
            else:
                self.gen_branch(expr.lhs, target, branch_if=False)
                self.gen_branch(expr.rhs, target, branch_if=False)
            return
        if isinstance(expr, Binary) and expr.op == "||":
            assert expr.lhs is not None and expr.rhs is not None
            if branch_if:
                self.gen_branch(expr.lhs, target, branch_if=True)
                self.gen_branch(expr.rhs, target, branch_if=True)
            else:
                skip = self.labels.new("or")
                self.gen_branch(expr.lhs, skip, branch_if=True)
                self.gen_branch(expr.rhs, target, branch_if=False)
                self.label(skip)
            return
        self.gen_expr(expr)
        reg = self._pop_to_reg()
        self.emit(f"{'BNEZ' if branch_if else 'BEQZ'} {reg}, {target}")
        self._free_reg(reg)

    # -- expressions --------------------------------------------------------------------

    def gen_expr(self, expr: Expr) -> None:
        """Generate code leaving the expression value on the value stack."""
        if isinstance(expr, IntLit):
            reg = self._alloc_reg()
            self.emit(f"MOVW {reg}, #{expr.value & 0xFFFFFFFF}")
            self._push_reg(reg)
        elif isinstance(expr, VarRef):
            self._gen_varref(expr)
        elif isinstance(expr, Index):
            byte_elem = self._push_element_addr(expr)
            addr = self._pop_to_reg()
            self.emit(f"{'LDRB' if byte_elem else 'LDR'} {addr}, [{addr}]")
            self._push_reg(addr)
        elif isinstance(expr, Call):
            self._gen_call(expr, want_value=True)
        elif isinstance(expr, Unary):
            self._gen_unary(expr)
        elif isinstance(expr, Binary):
            self._gen_binary(expr)
        else:  # pragma: no cover - sema rejects anything else
            raise CompileError(f"line {expr.line}: unhandled expression")

    def _gen_varref(self, expr: VarRef) -> None:
        name = expr.name
        reg = self._alloc_reg()
        if name in self.slot_of:
            self.emit(f"LDR {reg}, [sp, #{self.slot_of[name]}]")
        else:  # global scalar
            self.emit(f"LA {reg}, {name}")
            self.emit(f"LDR {reg}, [{reg}]")
        self._push_reg(reg)

    def _push_element_addr(self, expr: Index) -> bool:
        """Push the address of ``base[index]``; True when byte-sized."""
        base = expr.base
        kind = self._base_kind(base)
        reg = self._alloc_reg()
        if kind in ("array", "bytearray"):
            self.emit(f"LA {reg}, {base}")
        else:  # pointer parameter: the address lives in its slot
            self.emit(f"LDR {reg}, [sp, #{self.slot_of[base]}]")
        self._push_reg(reg)
        assert expr.index is not None
        self.gen_expr(expr.index)
        idx = self._pop_to_reg()
        base_reg = self._pop_to_reg()
        byte_elem = kind in ("bytearray", "bytepointer")
        if not byte_elem:
            self.emit(f"LSLI {idx}, {idx}, #2")
        self.emit(f"ADD {base_reg}, {base_reg}, {idx}")
        self._free_reg(idx)
        self._push_reg(base_reg)
        return byte_elem

    def _base_kind(self, name: str) -> str:
        if name in self.scope.params:
            ptype = self.scope.params[name]
            return "pointer" if ptype == "int*" else "bytepointer"
        gvar = self.info.globals.get(name)
        assert isinstance(gvar, GlobalVar)
        return "array" if gvar.elem_type == "int" else "bytearray"

    def _gen_unary(self, expr: Unary) -> None:
        assert expr.operand is not None
        if expr.op == "!":
            self._materialize_bool(expr)
            return
        self.gen_expr(expr.operand)
        reg = self._pop_to_reg()
        tmp = self._alloc_reg()
        if expr.op == "-":
            self.emit(f"MOVI {tmp}, #0")
            self.emit(f"SUB {reg}, {tmp}, {reg}")
        else:  # '~'
            self.emit(f"MOVI {tmp}, #-1")
            self.emit(f"EOR {reg}, {reg}, {tmp}")
        self._free_reg(tmp)
        self._push_reg(reg)

    def _gen_binary(self, expr: Binary) -> None:
        op = expr.op
        assert expr.lhs is not None and expr.rhs is not None
        if op in ("&&", "||", "==", "!="):
            self._materialize_bool(expr)
            return
        if op in ("<", ">", "<=", ">="):
            self.gen_expr(expr.lhs)
            self.gen_expr(expr.rhs)
            rhs = self._pop_to_reg()
            lhs = self._pop_to_reg()
            if op == "<":
                self.emit(f"SLT {lhs}, {lhs}, {rhs}")
            elif op == ">":
                self.emit(f"SLT {lhs}, {rhs}, {lhs}")
            elif op == "<=":
                self.emit(f"SLT {lhs}, {rhs}, {lhs}")
                self.emit(f"EORI {lhs}, {lhs}, #1")
            else:  # '>='
                self.emit(f"SLT {lhs}, {lhs}, {rhs}")
                self.emit(f"EORI {lhs}, {lhs}, #1")
            self._free_reg(rhs)
            self._push_reg(lhs)
            return
        # Plain ALU operator, with an immediate fast path.
        mnemonic = _ALU_MNEMONIC[op]
        if (
            isinstance(expr.rhs, IntLit)
            and -(1 << 15) <= expr.rhs.value < (1 << 15)
            and op in ("+", "-", "&", "|", "^", "<<", ">>")
        ):
            self.gen_expr(expr.lhs)
            lhs = self._pop_to_reg()
            value = expr.rhs.value
            if op == "-":
                self.emit(f"ADDI {lhs}, {lhs}, #{-value}")
            elif op in ("&", "|", "^") and value < 0:
                # Logical immediates are zero-extended; fall back to a reg.
                tmp = self._alloc_reg()
                self.emit(f"MOVW {tmp}, #{value & 0xFFFFFFFF}")
                self.emit(f"{mnemonic.upper()} {lhs}, {lhs}, {tmp}")
                self._free_reg(tmp)
            else:
                imm_mnemonic = {
                    "+": "ADDI", "&": "ANDI", "|": "ORRI", "^": "EORI",
                    "<<": "LSLI", ">>": "ASRI",
                }[op]
                self.emit(f"{imm_mnemonic} {lhs}, {lhs}, #{value}")
            self._push_reg(lhs)
            return
        self.gen_expr(expr.lhs)
        self.gen_expr(expr.rhs)
        rhs = self._pop_to_reg()
        lhs = self._pop_to_reg()
        self.emit(f"{mnemonic.upper()} {lhs}, {lhs}, {rhs}")
        self._free_reg(rhs)
        self._push_reg(lhs)

    def _materialize_bool(self, expr: Expr) -> None:
        """Evaluate a logical expression to 0/1 via the branch network."""
        true_label = self.labels.new("btrue")
        end_label = self.labels.new("bend")
        self.gen_branch(expr, true_label, branch_if=True)
        reg = self._alloc_reg()
        self.emit(f"MOVI {reg}, #0")
        self.emit(f"B {end_label}")
        self.label(true_label)
        self.emit(f"MOVI {reg}, #1")
        self.label(end_label)
        self._push_reg(reg)

    # -- calls ----------------------------------------------------------------------------

    def _gen_call(self, call: Call, want_value: bool) -> bool:
        """Generate a call; returns True when a value was pushed."""
        if call.name == "spawn":
            return self._gen_spawn(call, want_value)
        if call.name in ("amoadd", "amoswap"):
            return self._gen_amo(call, want_value)
        if call.name in ("coreid", "ncores"):
            self.emit(f"SYS #{5 if call.name == 'coreid' else 6}")
            return self._push_syscall_result(want_value)
        if call.name in INTRINSICS:
            self.gen_expr(call.args[0])
            reg = self._pop_to_reg()
            self.emit(f"MOV r0, {reg}")
            self._free_reg(reg)
            self.emit(f"SYS #{_SYSCALL_OF[call.name]}")
            return False
        func = self.info.funcs[call.name]
        assert isinstance(func, Func)
        self._spill_all()
        for arg, param in zip(call.args, func.params):
            if param.type in ("int*", "byte*"):
                assert isinstance(arg, VarRef)
                reg = self._alloc_reg()
                if arg.name in self.slot_of:  # pointer param passthrough
                    self.emit(f"LDR {reg}, [sp, #{self.slot_of[arg.name]}]")
                else:  # global array decays to its address
                    self.emit(f"LA {reg}, {arg.name}")
                self._push_reg(reg)
            else:
                self.gen_expr(arg)
        self._spill_all()
        nargs = len(call.args)
        for i in range(nargs):
            kind, payload = self.vstack[-nargs + i]
            assert kind == "spill"
            self.emit(f"LDR r{i}, [sp, #{self._spill_off(int(payload))}]")
        for _ in range(nargs):
            kind, payload = self.vstack.pop()
            self.free_spills.append(int(payload))
        self.emit(f"BL {call.name}")
        if want_value and func.ret == "int":
            reg = self._alloc_reg()
            self.emit(f"MOV {reg}, r0")
            self._push_reg(reg)
            return True
        return False

    def _push_syscall_result(self, want_value: bool) -> bool:
        if not want_value:
            return False
        reg = self._alloc_reg()
        self.emit(f"MOV {reg}, r0")
        self._push_reg(reg)
        return True

    def _gen_spawn(self, call: Call, want_value: bool) -> bool:
        """spawn(fn, arg) -> SYS #4 through the generated __spawn_ thunk.

        The thunk gives the worker core a landing pad that calls *fn*
        with the MiniC ABI and halts (parking the core) when it returns.
        """
        target = call.args[0]
        assert isinstance(target, VarRef)
        self.spawned.add(target.name)
        self.gen_expr(call.args[1])
        reg = self._pop_to_reg()
        self.emit(f"MOV r1, {reg}")
        self._free_reg(reg)
        self.emit(f"LA r0, __spawn_{target.name}")
        self.emit("SYS #4")
        return self._push_syscall_result(want_value)

    def _gen_amo(self, call: Call, want_value: bool) -> bool:
        """amoadd/amoswap(arr, idx, val): atomic RMW on a word element."""
        target = call.args[0]
        assert isinstance(target, VarRef) and call.args[1] is not None
        element = Index(base=target.name, index=call.args[1], line=call.line)
        byte_elem = self._push_element_addr(element)
        assert not byte_elem  # sema only admits int arrays/pointers
        self.gen_expr(call.args[2])
        value = self._pop_to_reg()
        addr = self._pop_to_reg()
        mnemonic = "AMOADD" if call.name == "amoadd" else "AMOSWAP"
        self.emit(f"{mnemonic} {addr}, {addr}, {value}")
        self._free_reg(value)
        if want_value:
            self._push_reg(addr)
            return True
        self._free_reg(addr)
        return False


def _emit_globals(module: Module) -> list[str]:
    lines = [".data"]
    for gvar in module.globals:
        init = gvar.init or []
        if gvar.elem_type == "int":
            size = gvar.size or 1
            words = ", ".join(str(v & 0xFFFFFFFF) for v in init)
            if words:
                lines.append(f"{gvar.name}: .word {words}")
                remaining = size - len(init)
                if remaining > 0:
                    lines.append(f"    .space {4 * remaining}")
            else:
                lines.append(f"{gvar.name}: .space {4 * size}")
        else:  # byte array
            assert gvar.size is not None
            data = ", ".join(str(v & 0xFF) for v in init)
            if data:
                lines.append(f"{gvar.name}: .byte {data}")
                remaining = gvar.size - len(init)
                if remaining > 0:
                    lines.append(f"    .space {remaining}")
            else:
                lines.append(f"{gvar.name}: .space {gvar.size}")
            lines.append("    .align 4")
    return lines


def compile_module(module: Module) -> str:
    """Generate assembly text for a parsed + analysed module."""
    info = analyse(module)
    labels = _Labels()
    spawned: set[str] = set()
    lines = [".text", "_start:", "    BL main", "    SYS #0"]
    for func in module.funcs:
        lines.extend(_FuncGen(func, info, labels, spawned).generate())
    # Worker landing pads: call the spawned function with the thread
    # argument already in r0, then halt to park the core.
    for name in sorted(spawned):
        lines.append(f"__spawn_{name}:")
        lines.append(f"    BL {name}")
        lines.append("    HALT")
    lines.extend(_emit_globals(module))
    return "\n".join(lines) + "\n"


def compile_to_asm(source: str) -> str:
    """Compile MiniC *source* to assembly text."""
    return compile_module(parse(source))
