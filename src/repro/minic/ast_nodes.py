"""MiniC abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field


# -- expressions ------------------------------------------------------------

@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    """``base[index]`` where base names an array or pointer."""

    base: str = ""
    index: Expr | None = None


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Unary(Expr):
    op: str = ""          # '-', '!', '~'
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""          # arithmetic / comparison / logical operator text
    lhs: Expr | None = None
    rhs: Expr | None = None


COMPARISONS = {"<", "<=", ">", ">=", "==", "!="}
LOGICAL = {"&&", "||"}


# -- statements ---------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class DeclStmt(Stmt):
    name: str = ""
    init: Expr | None = None


@dataclass
class AssignStmt(Stmt):
    target: Expr | None = None   # VarRef or Index
    value: Expr | None = None


@dataclass
class IfStmt(Stmt):
    cond: Expr | None = None
    then: Block | None = None
    els: Stmt | None = None      # Block or nested IfStmt


@dataclass
class WhileStmt(Stmt):
    cond: Expr | None = None
    body: Block | None = None


@dataclass
class ForStmt(Stmt):
    init: Stmt | None = None     # DeclStmt or AssignStmt
    cond: Expr | None = None
    post: Stmt | None = None     # AssignStmt
    body: Block | None = None


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


# -- top level -----------------------------------------------------------------

@dataclass
class Param:
    name: str
    type: str                    # 'int', 'int*', 'byte*'
    line: int = 0


@dataclass
class GlobalVar:
    name: str
    elem_type: str               # 'int' or 'byte'
    size: int | None             # None for scalars
    init: list[int] | None       # resolved constant initialiser
    line: int = 0


@dataclass
class Func:
    name: str
    ret: str                     # 'int' or 'void'
    params: list[Param]
    body: Block
    line: int = 0


@dataclass
class Module:
    globals: list[GlobalVar] = field(default_factory=list)
    funcs: list[Func] = field(default_factory=list)
