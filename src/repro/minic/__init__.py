"""MiniC: a small C-like language compiled to the repro ISA.

The paper's 15 MiBench workloads are C programs cross-compiled for ARM; our
equivalent workloads are MiniC programs compiled by this package.  The
language is deliberately small but expressive enough for real kernels
(CRC, FFT, sorting, graph search, crypto):

* types: ``int`` scalars (32-bit signed); global ``int``/``byte`` arrays;
  ``int*``/``byte*`` pointer parameters (indexable, no arithmetic);
* functions with up to four parameters, ``int`` or ``void`` return;
* statements: declarations, assignments (scalars and array elements),
  ``if``/``else``, ``while``, ``for``, ``break``, ``continue``, ``return``,
  expression statements;
* operators: ``+ - * / % & | ^ << >> < <= > >= == != && || ! - ~`` with C
  semantics (``&&``/``||`` short-circuit, ``>>`` is arithmetic);
* intrinsics: ``putw(x)``, ``putd(x)``, ``putc(x)`` (program output) and
  ``exit(x)`` — these lower to SYS instructions and drive the output stream
  that the fault classifier diffs against the golden run.

The compiler pipeline is lexer → parser → semantic analysis → code
generation to assembly text → :func:`repro.isa.assemble`.
"""

from repro.minic.codegen import compile_to_asm
from repro.minic.driver import compile_source
from repro.minic.parser import parse

__all__ = ["compile_source", "compile_to_asm", "parse"]
