"""MiniC recursive-descent parser.

Grammar (EBNF, ``{}`` = repetition, ``[]`` = optional)::

    module      = { global | func } ;
    global      = ("int"|"byte") IDENT [ "[" const "]" ] [ "=" init ] ";" ;
    init        = const | "{" const { "," const } "}" ;
    const       = [ "-" ] INT ;
    func        = ("int"|"void") IDENT "(" [ params ] ")" block ;
    params      = param { "," param } ;                 (* at most 4 *)
    param       = ("int"|"byte") [ "*" ] IDENT ;
    block       = "{" { stmt } "}" ;
    stmt        = "int" IDENT [ "=" expr ] ";"
                | lvalue "=" expr ";"
                | "if" "(" expr ")" block [ "else" (block | if-stmt) ]
                | "while" "(" expr ")" block
                | "for" "(" [ simple ] ";" [ expr ] ";" [ simple ] ")" block
                | "return" [ expr ] ";"
                | "break" ";" | "continue" ";"
                | expr ";" ;
    simple      = "int" IDENT "=" expr | lvalue "=" expr ;
    lvalue      = IDENT | IDENT "[" expr "]" ;

Expressions use C precedence: ``||`` < ``&&`` < ``|`` < ``^`` < ``&`` <
equality < relational < shift < additive < multiplicative < unary.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.minic.ast_nodes import (
    AssignStmt, Binary, Block, BreakStmt, Call, ContinueStmt, DeclStmt,
    Expr, ExprStmt, ForStmt, Func, GlobalVar, IfStmt, Index, IntLit,
    Module, Param, ReturnStmt, Stmt, Unary, VarRef, WhileStmt,
)
from repro.minic.lexer import Token, tokenize

#: Binary operator precedence levels, loosest first.
_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers --------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token | None:
        idx = self._pos + ahead
        return self._tokens[idx] if idx < len(self._tokens) else None

    def _at(self, kind: str, text: str | None = None) -> bool:
        tok = self._peek()
        if tok is None or tok.kind != kind:
            return False
        return text is None or tok.text == text

    def _advance(self) -> Token:
        tok = self._peek()
        if tok is None:
            raise CompileError("unexpected end of input")
        self._pos += 1
        return tok

    def _expect(self, kind: str, text: str | None = None) -> Token:
        tok = self._peek()
        if tok is None:
            raise CompileError(f"expected {text or kind}, got end of input")
        if tok.kind != kind or (text is not None and tok.text != text):
            raise CompileError(
                f"line {tok.line}: expected {text or kind}, got {tok.text!r}"
            )
        return self._advance()

    # -- top level ---------------------------------------------------------------

    def parse_module(self) -> Module:
        module = Module()
        while self._peek() is not None:
            tok = self._peek()
            assert tok is not None
            if tok.kind != "kw" or tok.text not in ("int", "byte", "void"):
                raise CompileError(
                    f"line {tok.line}: expected declaration, got {tok.text!r}"
                )
            # Disambiguate: TYPE IDENT '(' is a function.
            after = self._peek(2)
            if after is not None and after.kind == "(" and tok.text != "byte":
                module.funcs.append(self._parse_func())
            else:
                module.globals.append(self._parse_global())
        return module

    def _parse_const(self) -> int:
        negative = False
        if self._at("-"):
            self._advance()
            negative = True
        tok = self._expect("int")
        return -tok.value if negative else tok.value

    def _parse_global(self) -> GlobalVar:
        type_tok = self._advance()
        elem_type = type_tok.text
        if elem_type == "void":
            raise CompileError(f"line {type_tok.line}: void variable")
        name = self._expect("ident").text
        size: int | None = None
        if self._at("["):
            self._advance()
            size = self._parse_const()
            if size <= 0:
                raise CompileError(
                    f"line {type_tok.line}: array size must be positive"
                )
            self._expect("]")
        init: list[int] | None = None
        if self._at("="):
            self._advance()
            if self._at("{"):
                self._advance()
                init = [self._parse_const()]
                while self._at(","):
                    self._advance()
                    init.append(self._parse_const())
                self._expect("}")
            else:
                init = [self._parse_const()]
        self._expect(";")
        if elem_type == "byte" and size is None:
            raise CompileError(
                f"line {type_tok.line}: byte variables must be arrays"
            )
        if init is not None and size is not None and len(init) > size:
            raise CompileError(
                f"line {type_tok.line}: too many initialisers for {name}"
            )
        if init is not None and size is None and len(init) != 1:
            raise CompileError(
                f"line {type_tok.line}: scalar {name} needs a single initialiser"
            )
        return GlobalVar(name, elem_type, size, init, type_tok.line)

    def _parse_func(self) -> Func:
        ret_tok = self._advance()
        name = self._expect("ident").text
        self._expect("(")
        params: list[Param] = []
        if not self._at(")"):
            params.append(self._parse_param())
            while self._at(","):
                self._advance()
                params.append(self._parse_param())
        self._expect(")")
        if len(params) > 4:
            raise CompileError(
                f"line {ret_tok.line}: {name} has more than 4 parameters"
            )
        body = self._parse_block()
        return Func(name, ret_tok.text, params, body, ret_tok.line)

    def _parse_param(self) -> Param:
        type_tok = self._expect("kw")
        if type_tok.text not in ("int", "byte"):
            raise CompileError(f"line {type_tok.line}: bad parameter type")
        ptr = False
        if self._at("*"):
            self._advance()
            ptr = True
        name = self._expect("ident").text
        if type_tok.text == "byte" and not ptr:
            raise CompileError(
                f"line {type_tok.line}: byte parameters must be pointers"
            )
        ptype = type_tok.text + ("*" if ptr else "")
        return Param(name, ptype, type_tok.line)

    # -- statements -----------------------------------------------------------------

    def _parse_block(self) -> Block:
        open_tok = self._expect("{")
        stmts: list[Stmt] = []
        while not self._at("}"):
            if self._peek() is None:
                raise CompileError(
                    f"line {open_tok.line}: block opened here is never closed"
                )
            stmts.append(self._parse_stmt())
        self._expect("}")
        return Block(open_tok.line, stmts)

    def _parse_stmt(self) -> Stmt:
        tok = self._peek()
        if tok is None:
            raise CompileError("unexpected end of input in statement")
        if tok.kind == "kw":
            if tok.text == "int":
                stmt = self._parse_decl()
                self._expect(";")
                return stmt
            if tok.text == "if":
                return self._parse_if()
            if tok.text == "while":
                return self._parse_while()
            if tok.text == "for":
                return self._parse_for()
            if tok.text == "return":
                self._advance()
                value = None if self._at(";") else self._parse_expr()
                self._expect(";")
                return ReturnStmt(tok.line, value)
            if tok.text == "break":
                self._advance()
                self._expect(";")
                return BreakStmt(tok.line)
            if tok.text == "continue":
                self._advance()
                self._expect(";")
                return ContinueStmt(tok.line)
            raise CompileError(f"line {tok.line}: unexpected {tok.text!r}")
        stmt = self._parse_simple()
        self._expect(";")
        return stmt

    def _parse_decl(self) -> DeclStmt:
        tok = self._expect("kw", "int")
        name = self._expect("ident").text
        init = None
        if self._at("="):
            self._advance()
            init = self._parse_expr()
        return DeclStmt(tok.line, name, init)

    def _parse_simple(self) -> Stmt:
        """Assignment or expression statement (no trailing ';')."""
        if self._at("kw", "int"):
            return self._parse_decl()
        tok = self._peek()
        assert tok is not None
        if tok.kind == "ident":
            nxt = self._peek(1)
            if nxt is not None and nxt.kind == "=":
                name = self._advance().text
                self._advance()
                value = self._parse_expr()
                return AssignStmt(tok.line, VarRef(tok.line, name), value)
            if nxt is not None and nxt.kind == "[":
                # Could be `a[i] = e` or the expression `a[i]` — scan for
                # the matching ']' and check what follows.
                depth = 0
                ahead = 1
                while True:
                    look = self._peek(ahead)
                    if look is None:
                        raise CompileError(f"line {tok.line}: unbalanced '['")
                    if look.kind == "[":
                        depth += 1
                    elif look.kind == "]":
                        depth -= 1
                        if depth == 0:
                            break
                    ahead += 1
                after = self._peek(ahead + 1)
                if after is not None and after.kind == "=":
                    name = self._advance().text
                    self._advance()  # '['
                    idx = self._parse_expr()
                    self._expect("]")
                    self._expect("=")
                    value = self._parse_expr()
                    return AssignStmt(
                        tok.line, Index(tok.line, name, idx), value
                    )
        expr = self._parse_expr()
        return ExprStmt(tok.line, expr)

    def _parse_if(self) -> IfStmt:
        tok = self._expect("kw", "if")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        then = self._parse_block()
        els: Stmt | None = None
        if self._at("kw", "else"):
            self._advance()
            if self._at("kw", "if"):
                els = self._parse_if()
            else:
                els = self._parse_block()
        return IfStmt(tok.line, cond, then, els)

    def _parse_while(self) -> WhileStmt:
        tok = self._expect("kw", "while")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        body = self._parse_block()
        return WhileStmt(tok.line, cond, body)

    def _parse_for(self) -> ForStmt:
        tok = self._expect("kw", "for")
        self._expect("(")
        init = None if self._at(";") else self._parse_simple()
        self._expect(";")
        cond = None if self._at(";") else self._parse_expr()
        self._expect(";")
        post = None if self._at(")") else self._parse_simple()
        self._expect(")")
        body = self._parse_block()
        return ForStmt(tok.line, init, cond, post, body)

    # -- expressions -------------------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(_LEVELS):
            return self._parse_unary()
        lhs = self._parse_binary(level + 1)
        ops = _LEVELS[level]
        while True:
            tok = self._peek()
            if tok is None or tok.kind not in ops:
                return lhs
            self._advance()
            rhs = self._parse_binary(level + 1)
            lhs = Binary(tok.line, tok.text, lhs, rhs)

    def _parse_unary(self) -> Expr:
        tok = self._peek()
        assert tok is not None
        if tok.kind in ("-", "!", "~"):
            self._advance()
            operand = self._parse_unary()
            if tok.kind == "-" and isinstance(operand, IntLit):
                return IntLit(tok.line, -operand.value)
            return Unary(tok.line, tok.kind, operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        tok = self._peek()
        assert tok is not None
        if tok.kind == "int":
            self._advance()
            return IntLit(tok.line, tok.value)
        if tok.kind == "(":
            self._advance()
            inner = self._parse_expr()
            self._expect(")")
            return inner
        if tok.kind == "ident":
            name = self._advance().text
            if self._at("("):
                self._advance()
                args: list[Expr] = []
                if not self._at(")"):
                    args.append(self._parse_expr())
                    while self._at(","):
                        self._advance()
                        args.append(self._parse_expr())
                self._expect(")")
                return Call(tok.line, name, args)
            if self._at("["):
                self._advance()
                idx = self._parse_expr()
                self._expect("]")
                return Index(tok.line, name, idx)
            return VarRef(tok.line, name)
        raise CompileError(f"line {tok.line}: unexpected {tok.text!r}")


def parse(source: str) -> Module:
    """Parse MiniC *source* into a :class:`~repro.minic.ast_nodes.Module`."""
    return Parser(tokenize(source)).parse_module()
