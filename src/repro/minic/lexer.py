"""MiniC lexer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError

KEYWORDS = {
    "int", "byte", "void", "if", "else", "while", "for",
    "return", "break", "continue",
}

# Longest-match-first operator table.
OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
    "<", ">", "=", "(", ")", "{", "}", "[", "]", ",", ";",
]


@dataclass(frozen=True)
class Token:
    """One lexical token: kind is 'int', 'ident', 'kw' or the operator text."""

    kind: str
    text: str
    value: int
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind!r}, {self.text!r}, line={self.line})"


def tokenize(source: str) -> list[Token]:
    """Convert MiniC source text to a token list (EOF token excluded)."""
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError(f"line {line}: unterminated block comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                value = int(source[i:j])
            tokens.append(Token("int", source[i:j], value, line))
            i = j
            continue
        if ch == "'":
            # Character literal: 'a', '\n', '\0', '\\', '\''.
            j = i + 1
            if j < n and source[j] == "\\":
                escapes = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39}
                if j + 1 >= n or source[j + 1] not in escapes:
                    raise CompileError(f"line {line}: bad escape")
                value = escapes[source[j + 1]]
                j += 2
            elif j < n:
                value = ord(source[j])
                j += 1
            else:
                raise CompileError(f"line {line}: unterminated char literal")
            if j >= n or source[j] != "'":
                raise CompileError(f"line {line}: unterminated char literal")
            tokens.append(Token("int", source[i:j + 1], value, line))
            i = j + 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, 0, line))
            i = j
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(op, op, 0, line))
                i += len(op)
                break
        else:
            raise CompileError(f"line {line}: unexpected character {ch!r}")
    return tokens
