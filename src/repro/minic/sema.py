"""MiniC semantic analysis.

Resolves names, checks arity and l-values, enforces the language's
restrictions (arrays are global, pointers come from parameters, at most four
arguments), and collects per-function local variables for frame layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompileError
from repro.minic.ast_nodes import (
    AssignStmt, Binary, Block, BreakStmt, Call, ContinueStmt, DeclStmt,
    Expr, ExprStmt, ForStmt, Func, IfStmt, Index, IntLit, Module,
    ReturnStmt, Stmt, Unary, VarRef, WhileStmt,
)

#: Built-in functions: name -> (num args, returns value?).
INTRINSICS = {
    "putw": (1, False),
    "putd": (1, False),
    "putc": (1, False),
    "exit": (1, False),
    # SMP thread story (see repro.kernel.syscalls): spawn(fn, arg) starts
    # fn(arg) on an idle core and returns its core id — or SPAWN_FAILED
    # (0xFFFFFFFF) on a single-core machine, so portable programs test the
    # result and fall back to calling fn inline.  amoadd/amoswap are
    # word-sized atomic read-modify-writes on an int array element,
    # returning the old value; coreid()/ncores() identify the caller.
    "spawn": (2, True),
    "amoadd": (3, True),
    "amoswap": (3, True),
    "coreid": (0, True),
    "ncores": (0, True),
}


@dataclass
class FuncScope:
    """Name resolution for one function body."""

    func: Func
    params: dict[str, str] = field(default_factory=dict)   # name -> type
    locals: list[str] = field(default_factory=list)         # declaration order

    def slot_names(self) -> list[str]:
        return list(self.params) + self.locals


@dataclass
class ModuleInfo:
    """Resolved module: inputs for code generation."""

    module: Module
    globals: dict[str, object] = field(default_factory=dict)
    funcs: dict[str, Func] = field(default_factory=dict)
    scopes: dict[str, FuncScope] = field(default_factory=dict)


class Sema:
    def __init__(self, module: Module) -> None:
        self.module = module
        self.info = ModuleInfo(module)

    def run(self) -> ModuleInfo:
        info = self.info
        for gvar in self.module.globals:
            if gvar.name in info.globals or gvar.name in INTRINSICS:
                raise CompileError(
                    f"line {gvar.line}: duplicate global {gvar.name!r}"
                )
            info.globals[gvar.name] = gvar
        for func in self.module.funcs:
            if (
                func.name in info.funcs
                or func.name in info.globals
                or func.name in INTRINSICS
            ):
                raise CompileError(
                    f"line {func.line}: duplicate definition {func.name!r}"
                )
            info.funcs[func.name] = func
        if "main" not in info.funcs:
            raise CompileError("program has no main() function")
        main = info.funcs["main"]
        if main.params:
            raise CompileError("main() must take no parameters")
        for func in self.module.funcs:
            self._check_func(func)
        return info

    # -- per function -------------------------------------------------------

    def _check_func(self, func: Func) -> None:
        scope = FuncScope(func)
        for param in func.params:
            if param.name in scope.params:
                raise CompileError(
                    f"line {param.line}: duplicate parameter {param.name!r}"
                )
            scope.params[param.name] = param.type
        self._collect_locals(func.body, scope)
        self.info.scopes[func.name] = scope
        self._check_block(func.body, scope, in_loop=False)

    def _collect_locals(self, block: Block, scope: FuncScope) -> None:
        for stmt in block.stmts:
            if isinstance(stmt, DeclStmt):
                if stmt.name in scope.params:
                    raise CompileError(
                        f"line {stmt.line}: local {stmt.name!r} shadows a "
                        f"parameter of {scope.func.name}"
                    )
                # MiniC locals are function-scoped; re-declaring a name (e.g.
                # `for (int i = ...)` in two loops) reuses the same slot.
                if stmt.name not in scope.locals:
                    scope.locals.append(stmt.name)
            elif isinstance(stmt, IfStmt):
                self._collect_locals(stmt.then, scope)
                if isinstance(stmt.els, Block):
                    self._collect_locals(stmt.els, scope)
                elif isinstance(stmt.els, IfStmt):
                    self._collect_locals(Block(stmts=[stmt.els]), scope)
            elif isinstance(stmt, WhileStmt):
                self._collect_locals(stmt.body, scope)
            elif isinstance(stmt, ForStmt):
                if isinstance(stmt.init, DeclStmt):
                    self._collect_locals(Block(stmts=[stmt.init]), scope)
                self._collect_locals(stmt.body, scope)

    def _check_block(self, block: Block, scope: FuncScope, in_loop: bool) -> None:
        for stmt in block.stmts:
            self._check_stmt(stmt, scope, in_loop)

    def _check_stmt(self, stmt: Stmt, scope: FuncScope, in_loop: bool) -> None:
        if isinstance(stmt, DeclStmt):
            if stmt.init is not None:
                self._check_value(stmt.init, scope)
        elif isinstance(stmt, AssignStmt):
            self._check_lvalue(stmt.target, scope)
            self._check_value(stmt.value, scope)
        elif isinstance(stmt, IfStmt):
            self._check_value(stmt.cond, scope)
            self._check_block(stmt.then, scope, in_loop)
            if stmt.els is not None:
                if isinstance(stmt.els, Block):
                    self._check_block(stmt.els, scope, in_loop)
                else:
                    self._check_stmt(stmt.els, scope, in_loop)
        elif isinstance(stmt, WhileStmt):
            self._check_value(stmt.cond, scope)
            self._check_block(stmt.body, scope, in_loop=True)
        elif isinstance(stmt, ForStmt):
            if stmt.init is not None:
                self._check_stmt(stmt.init, scope, in_loop)
            if stmt.cond is not None:
                self._check_value(stmt.cond, scope)
            if stmt.post is not None:
                self._check_stmt(stmt.post, scope, in_loop)
            self._check_block(stmt.body, scope, in_loop=True)
        elif isinstance(stmt, ReturnStmt):
            if scope.func.ret == "void" and stmt.value is not None:
                raise CompileError(
                    f"line {stmt.line}: void function returns a value"
                )
            if scope.func.ret == "int" and stmt.value is None:
                raise CompileError(
                    f"line {stmt.line}: int function returns nothing"
                )
            if stmt.value is not None:
                self._check_value(stmt.value, scope)
        elif isinstance(stmt, (BreakStmt, ContinueStmt)):
            if not in_loop:
                raise CompileError(
                    f"line {stmt.line}: break/continue outside a loop"
                )
        elif isinstance(stmt, ExprStmt):
            assert stmt.expr is not None
            if isinstance(stmt.expr, Call):
                self._check_call(stmt.expr, scope, value_needed=False)
            else:
                self._check_value(stmt.expr, scope)
        else:  # pragma: no cover - parser produces no other nodes
            raise CompileError(f"line {stmt.line}: unhandled statement")

    # -- expressions ------------------------------------------------------------

    def _check_lvalue(self, expr: Expr | None, scope: FuncScope) -> None:
        if isinstance(expr, VarRef):
            kind = self._name_kind(expr.name, scope, expr.line)
            if kind in ("array", "bytearray"):
                raise CompileError(
                    f"line {expr.line}: cannot assign to array {expr.name!r}"
                )
            return
        if isinstance(expr, Index):
            self._check_indexable(expr, scope)
            assert expr.index is not None
            self._check_value(expr.index, scope)
            return
        line = expr.line if expr is not None else 0
        raise CompileError(f"line {line}: not an assignable l-value")

    def _check_indexable(self, expr: Index, scope: FuncScope) -> None:
        kind = self._name_kind(expr.base, scope, expr.line)
        if kind not in ("array", "bytearray", "pointer", "bytepointer"):
            raise CompileError(
                f"line {expr.line}: {expr.base!r} is not indexable"
            )

    def _name_kind(self, name: str, scope: FuncScope, line: int) -> str:
        """Classify a name: scalar / array / bytearray / pointer / bytepointer."""
        if name in scope.params:
            ptype = scope.params[name]
            if ptype == "int":
                return "scalar"
            return "pointer" if ptype == "int*" else "bytepointer"
        if name in scope.locals:
            return "scalar"
        gvar = self.info.globals.get(name)
        if gvar is not None:
            if gvar.size is None:
                return "scalar"
            return "array" if gvar.elem_type == "int" else "bytearray"
        raise CompileError(f"line {line}: undefined name {name!r}")

    def _check_value(self, expr: Expr | None, scope: FuncScope) -> None:
        """Check an expression used for its (int) value."""
        assert expr is not None
        if isinstance(expr, IntLit):
            if not -(1 << 31) <= expr.value < (1 << 32):
                raise CompileError(
                    f"line {expr.line}: literal out of 32-bit range"
                )
        elif isinstance(expr, VarRef):
            kind = self._name_kind(expr.name, scope, expr.line)
            if kind in ("array", "bytearray"):
                raise CompileError(
                    f"line {expr.line}: array {expr.name!r} used as a value "
                    f"(arrays may only be passed as call arguments)"
                )
        elif isinstance(expr, Index):
            self._check_indexable(expr, scope)
            assert expr.index is not None
            self._check_value(expr.index, scope)
        elif isinstance(expr, Call):
            self._check_call(expr, scope, value_needed=True)
        elif isinstance(expr, Unary):
            self._check_value(expr.operand, scope)
        elif isinstance(expr, Binary):
            self._check_value(expr.lhs, scope)
            self._check_value(expr.rhs, scope)
        else:  # pragma: no cover - parser produces no other nodes
            raise CompileError(f"line {expr.line}: unhandled expression")

    def _check_call(self, call: Call, scope: FuncScope, value_needed: bool) -> None:
        if call.name in INTRINSICS:
            arity, returns = INTRINSICS[call.name]
            if len(call.args) != arity:
                raise CompileError(
                    f"line {call.line}: {call.name} takes {arity} argument(s)"
                )
            if value_needed and not returns:
                raise CompileError(
                    f"line {call.line}: {call.name} has no value"
                )
            if call.name == "spawn":
                self._check_spawn(call, scope)
                return
            if call.name in ("amoadd", "amoswap"):
                self._check_amo(call, scope)
                return
        else:
            func = self.info.funcs.get(call.name)
            if func is None:
                raise CompileError(
                    f"line {call.line}: undefined function {call.name!r}"
                )
            if len(call.args) != len(func.params):
                raise CompileError(
                    f"line {call.line}: {call.name} takes "
                    f"{len(func.params)} argument(s), got {len(call.args)}"
                )
            if value_needed and func.ret == "void":
                raise CompileError(
                    f"line {call.line}: void function {call.name} used "
                    f"as a value"
                )
            for arg, param in zip(call.args, func.params):
                self._check_arg(arg, param.type, scope)
            return
        for arg in call.args:
            self._check_value(arg, scope)

    def _check_spawn(self, call: Call, scope: FuncScope) -> None:
        """spawn(fn, arg): fn must name a defined one-int-parameter function."""
        target = call.args[0]
        if not isinstance(target, VarRef):
            raise CompileError(
                f"line {call.line}: spawn's first argument must name a "
                f"function"
            )
        func = self.info.funcs.get(target.name)
        if func is None:
            raise CompileError(
                f"line {call.line}: spawn target {target.name!r} is not a "
                f"defined function"
            )
        if len(func.params) != 1 or func.params[0].type != "int":
            raise CompileError(
                f"line {call.line}: spawn target {target.name!r} must take "
                f"exactly one int parameter"
            )
        self._check_value(call.args[1], scope)

    def _check_amo(self, call: Call, scope: FuncScope) -> None:
        """amoadd/amoswap(arr, idx, val): word-sized int array element only."""
        target = call.args[0]
        if not (
            isinstance(target, VarRef)
            and self._name_kind(target.name, scope, call.line)
            in ("array", "pointer")
        ):
            raise CompileError(
                f"line {call.line}: {call.name}'s first argument must be an "
                f"int array or int* pointer (atomics are word-sized)"
            )
        self._check_value(call.args[1], scope)
        self._check_value(call.args[2], scope)

    def _check_arg(self, arg: Expr, ptype: str, scope: FuncScope) -> None:
        """Pointer parameters accept arrays and same-typed pointers."""
        if ptype in ("int*", "byte*"):
            if not isinstance(arg, VarRef):
                raise CompileError(
                    f"line {arg.line}: pointer argument must be an array "
                    f"or pointer name"
                )
            kind = self._name_kind(arg.name, scope, arg.line)
            wanted = (
                ("array", "pointer") if ptype == "int*"
                else ("bytearray", "bytepointer")
            )
            if kind not in wanted:
                raise CompileError(
                    f"line {arg.line}: {arg.name!r} does not match "
                    f"parameter type {ptype}"
                )
        else:
            self._check_value(arg, scope)


def analyse(module: Module) -> ModuleInfo:
    """Run semantic analysis; raises :class:`CompileError` on any violation."""
    return Sema(module).run()
