"""MiniC driver: source text → assembled Program."""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.isa.program import DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE, Program
from repro.minic.codegen import compile_to_asm


def compile_source(
    source: str,
    text_base: int = DEFAULT_TEXT_BASE,
    data_base: int = DEFAULT_DATA_BASE,
) -> Program:
    """Compile MiniC *source* all the way to a loadable Program image."""
    return assemble(compile_to_asm(source), text_base, data_base)
