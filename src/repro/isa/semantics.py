"""Pure integer semantics of the ISA.

All values are 32-bit unsigned Python ints (0..2**32-1); signed
interpretation happens inside the operation.  These helpers are shared by
the out-of-order core's execute stage and by the unit tests, so the
architecture model and its oracle can never drift apart.
"""

from __future__ import annotations

from typing import Callable

from repro.isa.opcodes import Op

MASK32 = 0xFFFFFFFF


class ArithmeticFault(Exception):
    """Raised on division/modulo by zero; becomes a precise CPU exception."""


def to_signed(value: int) -> int:
    """Interpret a 32-bit value as two's-complement signed."""
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def to_u32(value: int) -> int:
    """Wrap an arbitrary Python int to 32 bits."""
    return value & MASK32


def _div(a: int, b: int) -> int:
    if b == 0:
        raise ArithmeticFault("division by zero")
    sa, sb = to_signed(a), to_signed(b)
    # C-style truncation toward zero (Python's // floors).
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return to_u32(q)


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise ArithmeticFault("modulo by zero")
    sa, sb = to_signed(a), to_signed(b)
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return to_u32(r)


#: op -> f(a, b) -> 32-bit result.  For immediate forms, b is the immediate
#: (already wrapped to 32 bits by the caller).
ALU_OPS: dict[Op, Callable[[int, int], int]] = {
    Op.ADD: lambda a, b: (a + b) & MASK32,
    Op.ADDI: lambda a, b: (a + b) & MASK32,
    Op.SUB: lambda a, b: (a - b) & MASK32,
    Op.MUL: lambda a, b: (a * b) & MASK32,
    Op.DIV: _div,
    Op.MOD: _mod,
    Op.AND: lambda a, b: a & b,
    Op.ANDI: lambda a, b: a & b,
    Op.ORR: lambda a, b: a | b,
    Op.ORRI: lambda a, b: a | b,
    Op.EOR: lambda a, b: a ^ b,
    Op.EORI: lambda a, b: a ^ b,
    Op.LSL: lambda a, b: (a << (b & 31)) & MASK32,
    Op.LSLI: lambda a, b: (a << (b & 31)) & MASK32,
    Op.LSR: lambda a, b: a >> (b & 31),
    Op.LSRI: lambda a, b: a >> (b & 31),
    Op.ASR: lambda a, b: (to_signed(a) >> (b & 31)) & MASK32,
    Op.ASRI: lambda a, b: (to_signed(a) >> (b & 31)) & MASK32,
    Op.SLT: lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    Op.SLTI: lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    Op.SLTU: lambda a, b: 1 if a < b else 0,
}

#: op -> f(a, b) -> bool, for compare-and-branch instructions.
BRANCH_CONDS: dict[Op, Callable[[int, int], bool]] = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: to_signed(a) < to_signed(b),
    Op.BGE: lambda a, b: to_signed(a) >= to_signed(b),
    Op.BLTU: lambda a, b: a < b,
    Op.BGEU: lambda a, b: a >= b,
    Op.BEQZ: lambda a, b: a == 0,
    Op.BNEZ: lambda a, b: a != 0,
}


def alu(op: Op, a: int, b: int) -> int:
    """Evaluate an ALU opcode on 32-bit operands."""
    return ALU_OPS[op](a & MASK32, b & MASK32)


def branch_taken(op: Op, a: int, b: int) -> bool:
    """Evaluate a compare-and-branch condition on 32-bit operands."""
    return BRANCH_CONDS[op](a & MASK32, b & MASK32)
