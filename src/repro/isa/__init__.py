"""A compact 32-bit RISC instruction set with a concrete binary encoding.

The ISA plays the role that ARMv7 plays in the paper: workloads are compiled
to it, instruction words live in the (injectable) L1I/L2 cache data arrays,
and a bit flip in a fetched word decodes to a *different* instruction — or to
an illegal one that raises an undefined-instruction exception, exactly the
mechanism behind the paper's crash-dominated L1I results.

Public surface:

* :mod:`repro.isa.registers` — architectural register model (r0..r15).
* :mod:`repro.isa.opcodes` — opcode numbering and instruction formats.
* :mod:`repro.isa.encoding` — ``encode``/``decode`` between 32-bit words and
  :class:`~repro.isa.encoding.DecodedInst`.
* :mod:`repro.isa.semantics` — pure integer ALU semantics shared by the CPU
  model and the tests.
* :mod:`repro.isa.assembler` — two-pass assembler producing a
  :class:`~repro.isa.program.Program` image.
"""

from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble, disassemble_program
from repro.isa.encoding import DecodedInst, decode, encode
from repro.isa.opcodes import Format, Op
from repro.isa.program import Program
from repro.isa.registers import FP, LR, NUM_ARCH_REGS, SP, reg_name

__all__ = [
    "FP",
    "LR",
    "NUM_ARCH_REGS",
    "SP",
    "DecodedInst",
    "Format",
    "Op",
    "Program",
    "assemble",
    "decode",
    "disassemble",
    "disassemble_program",
    "encode",
    "reg_name",
]
