"""Opcode numbering, instruction formats and static per-opcode properties.

The 6-bit opcode space is deliberately sparse: opcode ``0x00`` and every
unassigned value decode to *illegal instructions*.  Cleared memory reads as
zero words, and single bit flips frequently land in unassigned opcode space,
so corrupted instruction fetch realistically raises undefined-instruction
exceptions (the paper's dominant L1I crash mechanism).
"""

from __future__ import annotations

import enum


class Format(enum.Enum):
    """Bit-level layout family of an instruction word."""

    R = "r"          # opcode | rd | rs1 | rs2
    I = "i"          # opcode | rd | rs1 | imm16          (ALU-imm, LDR/STR)
    BC = "bc"        # opcode | rs1 | rs2 | imm16         (compare-and-branch)
    BZ = "bz"        # opcode | rs1 | imm16               (compare-zero-branch)
    J = "j"          # opcode | off26                     (B, BL)
    R1 = "r1"        # opcode | rd | rs1                  (JR, JALR)
    SYS = "sys"      # opcode | imm16                     (SYS)
    NONE = "none"    # opcode only                        (NOP, HALT)


class Op(enum.IntEnum):
    """Instruction opcodes (the 6-bit major opcode field)."""

    # R-type ALU
    ADD = 0x01
    SUB = 0x02
    MUL = 0x03
    DIV = 0x04
    MOD = 0x05
    AND = 0x06
    ORR = 0x07
    EOR = 0x08
    LSL = 0x09
    LSR = 0x0A
    ASR = 0x0B
    SLT = 0x0C
    SLTU = 0x0D
    # I-type ALU
    ADDI = 0x10
    ANDI = 0x11
    ORRI = 0x12
    EORI = 0x13
    LSLI = 0x14
    LSRI = 0x15
    ASRI = 0x16
    SLTI = 0x17
    MOVI = 0x18
    LUI = 0x19
    # Memory
    LDR = 0x20
    LDRB = 0x21
    STR = 0x22
    STRB = 0x23
    # Atomics (read-modify-write a word, returning the old value)
    AMOADD = 0x24
    AMOSWAP = 0x25
    # Compare-and-branch (pc-relative word offsets)
    BEQ = 0x28
    BNE = 0x29
    BLT = 0x2A
    BGE = 0x2B
    BLTU = 0x2C
    BGEU = 0x2D
    BEQZ = 0x2E
    BNEZ = 0x2F
    # Jumps
    B = 0x30
    BL = 0x31
    JR = 0x32
    JALR = 0x33
    # System
    SYS = 0x38
    NOP = 0x3E
    HALT = 0x3F


FORMAT_OF: dict[Op, Format] = {
    Op.ADD: Format.R, Op.SUB: Format.R, Op.MUL: Format.R, Op.DIV: Format.R,
    Op.MOD: Format.R, Op.AND: Format.R, Op.ORR: Format.R, Op.EOR: Format.R,
    Op.LSL: Format.R, Op.LSR: Format.R, Op.ASR: Format.R, Op.SLT: Format.R,
    Op.SLTU: Format.R,
    Op.ADDI: Format.I, Op.ANDI: Format.I, Op.ORRI: Format.I, Op.EORI: Format.I,
    Op.LSLI: Format.I, Op.LSRI: Format.I, Op.ASRI: Format.I, Op.SLTI: Format.I,
    Op.MOVI: Format.I, Op.LUI: Format.I,
    Op.LDR: Format.I, Op.LDRB: Format.I, Op.STR: Format.I, Op.STRB: Format.I,
    Op.AMOADD: Format.R, Op.AMOSWAP: Format.R,
    Op.BEQ: Format.BC, Op.BNE: Format.BC, Op.BLT: Format.BC, Op.BGE: Format.BC,
    Op.BLTU: Format.BC, Op.BGEU: Format.BC,
    Op.BEQZ: Format.BZ, Op.BNEZ: Format.BZ,
    Op.B: Format.J, Op.BL: Format.J,
    Op.JR: Format.R1, Op.JALR: Format.R1,
    Op.SYS: Format.SYS, Op.NOP: Format.NONE, Op.HALT: Format.NONE,
}

#: Opcodes whose I-format immediate is *not* a source operand but an address
#: offset, together with the memory access size in bytes.
MEM_SIZE: dict[Op, int] = {
    Op.LDR: 4, Op.LDRB: 1, Op.STR: 4, Op.STRB: 1,
    Op.AMOADD: 4, Op.AMOSWAP: 4,
}

LOADS = frozenset({Op.LDR, Op.LDRB})
STORES = frozenset({Op.STR, Op.STRB})
AMOS = frozenset({Op.AMOADD, Op.AMOSWAP})
COND_BRANCHES = frozenset(
    {Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU, Op.BEQZ, Op.BNEZ}
)
DIRECT_JUMPS = frozenset({Op.B, Op.BL})
INDIRECT_JUMPS = frozenset({Op.JR, Op.JALR})
CONTROL = COND_BRANCHES | DIRECT_JUMPS | INDIRECT_JUMPS

#: Execution latency in cycles per opcode family (issue-to-complete).  Cache
#: access latency is added on top for memory operations.
LATENCY: dict[Op, int] = {Op.MUL: 3, Op.DIV: 12, Op.MOD: 12}
DEFAULT_LATENCY = 1

_VALID = {int(op) for op in Op}


def is_valid_opcode(value: int) -> bool:
    """Return True when the 6-bit *value* names an architected instruction."""
    return value in _VALID
