"""Two-pass assembler for the repro ISA.

Source syntax (one statement per line; ``;`` and ``//`` start comments,
``#`` prefixes immediate operands)::

    .text
    main:
        MOVI r0, #5
        LA   r1, table        ; pseudo: LUI + ORRI with a label address
        LDR  r2, [r1, #4]
        STR  r2, [r1]
        ADD  r0, r0, r2
        BNE  r0, r2, main
        BL   helper
        RET                   ; pseudo: JR lr
        SYS  #1
        HALT
    .data
    table:  .word 1, 2, 3, main
    buffer: .space 64
    flags:  .byte 1, 0, 1
            .align 4

Pseudo-instructions: ``LA rd, label`` (always two words), ``MOVW rd, #imm32``
(one or two words depending on the value), ``MOV rd, rs`` (= ``ADDI rd, rs,
#0``) and ``RET`` (= ``JR lr``).

Pass 1 sizes every statement and assigns label addresses; pass 2 encodes.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass

from repro.errors import AsmError
from repro.isa.encoding import encode
from repro.isa.opcodes import Op
from repro.isa.program import DEFAULT_DATA_BASE, DEFAULT_TEXT_BASE, Program
from repro.isa.registers import LR, parse_reg

_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")

_R_TYPE = {
    "add": Op.ADD, "sub": Op.SUB, "mul": Op.MUL, "div": Op.DIV,
    "mod": Op.MOD, "and": Op.AND, "orr": Op.ORR, "eor": Op.EOR,
    "lsl": Op.LSL, "lsr": Op.LSR, "asr": Op.ASR, "slt": Op.SLT,
    "sltu": Op.SLTU,
    "amoadd": Op.AMOADD, "amoswap": Op.AMOSWAP,
}
_I_ALU = {
    "addi": Op.ADDI, "andi": Op.ANDI, "orri": Op.ORRI, "eori": Op.EORI,
    "lsli": Op.LSLI, "lsri": Op.LSRI, "asri": Op.ASRI, "slti": Op.SLTI,
}
_BC = {
    "beq": Op.BEQ, "bne": Op.BNE, "blt": Op.BLT, "bge": Op.BGE,
    "bltu": Op.BLTU, "bgeu": Op.BGEU,
}
_BZ = {"beqz": Op.BEQZ, "bnez": Op.BNEZ}
_MEM = {"ldr": Op.LDR, "ldrb": Op.LDRB, "str": Op.STR, "strb": Op.STRB}


@dataclass
class _Stmt:
    """One source statement after pass 1 (sized, address assigned)."""

    lineno: int
    section: str          # "text" | "data"
    addr: int
    mnemonic: str
    operands: list[str]
    size: int


def _parse_int(text: str) -> int:
    text = text.strip()
    if text.startswith("#"):
        text = text[1:]
    try:
        return int(text, 0)
    except ValueError:
        raise AsmError(f"not an integer literal: {text!r}") from None


def _is_int(text: str) -> bool:
    try:
        _parse_int(text)
        return True
    except AsmError:
        return False


def _split_operands(rest: str) -> list[str]:
    """Split an operand string on commas, keeping ``[base, #off]`` together."""
    parts: list[str] = []
    depth = 0
    current = []
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_mem_operand(text: str, lineno: int) -> tuple[int, int]:
    """Parse ``[rbase]`` or ``[rbase, #off]`` to (base_reg, offset)."""
    text = text.strip()
    if not (text.startswith("[") and text.endswith("]")):
        raise AsmError(f"line {lineno}: expected memory operand, got {text!r}")
    inner = text[1:-1]
    parts = [p.strip() for p in inner.split(",")]
    if len(parts) == 1:
        return parse_reg(parts[0]), 0
    if len(parts) == 2:
        return parse_reg(parts[0]), _parse_int(parts[1])
    raise AsmError(f"line {lineno}: malformed memory operand {text!r}")


class Assembler:
    """Two-pass assembler; see the module docstring for the source syntax."""

    def __init__(
        self,
        text_base: int = DEFAULT_TEXT_BASE,
        data_base: int = DEFAULT_DATA_BASE,
    ) -> None:
        self.text_base = text_base
        self.data_base = data_base

    def assemble(self, source: str) -> Program:
        stmts, symbols = self._pass1(source)
        return self._pass2(stmts, symbols)

    # -- pass 1 ------------------------------------------------------------

    def _pass1(self, source: str) -> tuple[list[_Stmt], dict[str, int]]:
        section = "text"
        text_addr = self.text_base
        data_addr = self.data_base
        symbols: dict[str, int] = {}
        stmts: list[_Stmt] = []

        for lineno, raw_line in enumerate(source.splitlines(), start=1):
            # ';' and '//' start comments.  '#' does not: it prefixes
            # immediate operands.
            line = raw_line.split(";", 1)[0].split("//", 1)[0].strip()
            if not line:
                continue

            while line and ":" in line.split()[0]:
                label, _, line = line.partition(":")
                label = label.strip()
                if not _LABEL_RE.match(label):
                    raise AsmError(f"line {lineno}: bad label {label!r}")
                if label in symbols:
                    raise AsmError(f"line {lineno}: duplicate label {label!r}")
                symbols[label] = text_addr if section == "text" else data_addr
                line = line.strip()
                if not line:
                    break
            if not line:
                continue

            fields = line.split(None, 1)
            mnemonic = fields[0].lower()
            rest = fields[1] if len(fields) > 1 else ""
            operands = _split_operands(rest)

            if mnemonic == ".text":
                section = "text"
                continue
            if mnemonic == ".data":
                section = "data"
                continue

            addr = text_addr if section == "text" else data_addr
            size = self._sizeof(mnemonic, operands, section, lineno)
            if mnemonic == ".align":
                align = _parse_int(operands[0]) if operands else 4
                new_addr = (addr + align - 1) // align * align
                size = new_addr - addr
            stmts.append(_Stmt(lineno, section, addr, mnemonic, operands, size))
            if section == "text":
                text_addr += size
            else:
                data_addr += size

        return stmts, symbols

    def _sizeof(
        self, mnemonic: str, operands: list[str], section: str, lineno: int
    ) -> int:
        if mnemonic.startswith("."):
            if mnemonic == ".word":
                return 4 * len(operands)
            if mnemonic == ".byte":
                return len(operands)
            if mnemonic == ".space":
                if len(operands) != 1:
                    raise AsmError(f"line {lineno}: .space needs a size")
                return _parse_int(operands[0])
            if mnemonic == ".align":
                return 0  # recomputed by the caller
            raise AsmError(f"line {lineno}: unknown directive {mnemonic!r}")
        if section != "text":
            raise AsmError(
                f"line {lineno}: instruction {mnemonic!r} outside .text"
            )
        if mnemonic == "la":
            return 8
        if mnemonic == "movw":
            value = _parse_int(operands[1]) if len(operands) == 2 else 0
            value &= 0xFFFFFFFF
            signed = value - 0x100000000 if value & 0x80000000 else value
            return 4 if -(1 << 15) <= signed < (1 << 15) else 8
        return 4

    # -- pass 2 ------------------------------------------------------------

    def _pass2(self, stmts: list[_Stmt], symbols: dict[str, int]) -> Program:
        text = bytearray()
        data = bytearray()
        for stmt in stmts:
            if stmt.section == "text":
                for word in self._encode_stmt(stmt, symbols):
                    text += struct.pack("<I", word)
            else:
                data += self._encode_data(stmt, symbols)
        return Program(
            text=bytes(text),
            data=bytes(data),
            text_base=self.text_base,
            data_base=self.data_base,
            symbols=dict(symbols),
        )

    def _resolve(self, token: str, symbols: dict[str, int], lineno: int) -> int:
        token = token.strip()
        if _is_int(token):
            return _parse_int(token)
        if token in symbols:
            return symbols[token]
        raise AsmError(f"line {lineno}: undefined symbol {token!r}")

    def _encode_data(self, stmt: _Stmt, symbols: dict[str, int]) -> bytes:
        out = bytearray()
        if stmt.mnemonic == ".word":
            for token in stmt.operands:
                value = self._resolve(token, symbols, stmt.lineno)
                out += struct.pack("<I", value & 0xFFFFFFFF)
        elif stmt.mnemonic == ".byte":
            for token in stmt.operands:
                out.append(_parse_int(token) & 0xFF)
        elif stmt.mnemonic == ".space":
            out += bytes(_parse_int(stmt.operands[0]))
        elif stmt.mnemonic == ".align":
            out += bytes(stmt.size)
        else:  # pragma: no cover - pass 1 already validated directives
            raise AsmError(f"line {stmt.lineno}: bad directive in .data")
        if len(out) != stmt.size:
            raise AsmError(
                f"line {stmt.lineno}: directive size changed between passes"
            )
        return bytes(out)

    def _encode_stmt(self, stmt: _Stmt, symbols: dict[str, int]) -> list[int]:
        m, ops, lineno, pc = stmt.mnemonic, stmt.operands, stmt.lineno, stmt.addr

        def need(count: int) -> None:
            if len(ops) != count:
                raise AsmError(
                    f"line {lineno}: {m} expects {count} operands, "
                    f"got {len(ops)}"
                )

        if stmt.mnemonic == ".align":
            if stmt.size % 4:
                raise AsmError(f"line {lineno}: .align in .text must be 4-byte")
            return [encode(Op.NOP)] * (stmt.size // 4)
        if stmt.mnemonic == ".word":
            # Raw words in .text: lets tests and hand-written programs plant
            # arbitrary (e.g. deliberately illegal) instruction encodings.
            return [
                self._resolve(token, symbols, lineno) & 0xFFFFFFFF
                for token in stmt.operands
            ]

        if m in _R_TYPE:
            need(3)
            return [encode(_R_TYPE[m], rd=parse_reg(ops[0]),
                           rs1=parse_reg(ops[1]), rs2=parse_reg(ops[2]))]
        if m in _I_ALU:
            need(3)
            return [encode(_I_ALU[m], rd=parse_reg(ops[0]),
                           rs1=parse_reg(ops[1]), imm=_parse_int(ops[2]))]
        if m == "movi":
            need(2)
            return [encode(Op.MOVI, rd=parse_reg(ops[0]),
                           imm=_parse_int(ops[1]))]
        if m == "lui":
            need(2)
            return [encode(Op.LUI, rd=parse_reg(ops[0]),
                           imm=_parse_int(ops[1]))]
        if m in _MEM:
            need(2)
            reg = parse_reg(ops[0])
            base, off = _parse_mem_operand(ops[1], lineno)
            return [encode(_MEM[m], rd=reg, rs1=base, imm=off)]
        if m in _BC:
            need(3)
            target = self._resolve(ops[2], symbols, lineno)
            off = self._word_offset(target, pc, lineno)
            return [encode(_BC[m], rd=parse_reg(ops[0]),
                           rs1=parse_reg(ops[1]), imm=off)]
        if m in _BZ:
            need(2)
            target = self._resolve(ops[1], symbols, lineno)
            off = self._word_offset(target, pc, lineno)
            return [encode(_BZ[m], rd=parse_reg(ops[0]), imm=off)]
        if m in ("b", "bl"):
            need(1)
            target = self._resolve(ops[0], symbols, lineno)
            off = self._word_offset(target, pc, lineno, wide=True)
            return [encode(Op.B if m == "b" else Op.BL, imm=off)]
        if m == "jr":
            need(1)
            return [encode(Op.JR, rs1=parse_reg(ops[0]))]
        if m == "jalr":
            need(2)
            return [encode(Op.JALR, rd=parse_reg(ops[0]),
                           rs1=parse_reg(ops[1]))]
        if m == "ret":
            need(0)
            return [encode(Op.JR, rs1=LR)]
        if m == "mov":
            need(2)
            return [encode(Op.ADDI, rd=parse_reg(ops[0]),
                           rs1=parse_reg(ops[1]), imm=0)]
        if m == "la":
            need(2)
            rd = parse_reg(ops[0])
            value = self._resolve(ops[1], symbols, lineno)
            return self._load_imm32(rd, value)
        if m == "movw":
            need(2)
            rd = parse_reg(ops[0])
            value = _parse_int(ops[1]) & 0xFFFFFFFF
            words = self._load_imm32(rd, value)
            if len(words) * 4 != stmt.size:
                raise AsmError(f"line {lineno}: movw size mismatch")
            return words
        if m == "sys":
            need(1)
            return [encode(Op.SYS, imm=_parse_int(ops[0]))]
        if m == "nop":
            need(0)
            return [encode(Op.NOP)]
        if m == "halt":
            need(0)
            return [encode(Op.HALT)]
        raise AsmError(f"line {lineno}: unknown mnemonic {m!r}")

    @staticmethod
    def _load_imm32(rd: int, value: int) -> list[int]:
        signed = value - 0x100000000 if value & 0x80000000 else value
        if -(1 << 15) <= signed < (1 << 15):
            return [encode(Op.MOVI, rd=rd, imm=signed)]
        return [
            encode(Op.LUI, rd=rd, imm=(value >> 16) & 0xFFFF),
            encode(Op.ORRI, rd=rd, rs1=rd, imm=value & 0xFFFF),
        ]

    @staticmethod
    def _word_offset(target: int, pc: int, lineno: int, wide: bool = False) -> int:
        delta = target - pc
        if delta % 4:
            raise AsmError(f"line {lineno}: branch target not word aligned")
        off = delta // 4
        limit = 1 << (25 if wide else 15)
        if not -limit <= off < limit:
            raise AsmError(f"line {lineno}: branch target out of range")
        return off


def assemble(
    source: str,
    text_base: int = DEFAULT_TEXT_BASE,
    data_base: int = DEFAULT_DATA_BASE,
) -> Program:
    """Assemble *source* into a :class:`~repro.isa.program.Program`."""
    return Assembler(text_base=text_base, data_base=data_base).assemble(source)
