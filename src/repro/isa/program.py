"""Program image produced by the assembler and consumed by the loader."""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default virtual placement of the two program sections.  The loader and
#: the MiniC runtime share these; the assembler resolves label addresses
#: against them.
DEFAULT_TEXT_BASE = 0x0001_0000
DEFAULT_DATA_BASE = 0x0004_0000


@dataclass(frozen=True)
class Program:
    """An assembled program: raw section bytes plus symbol information."""

    text: bytes
    data: bytes
    text_base: int = DEFAULT_TEXT_BASE
    data_base: int = DEFAULT_DATA_BASE
    symbols: dict[str, int] = field(default_factory=dict)

    @property
    def entry(self) -> int:
        """Entry point: ``_start`` if defined, else ``main``, else text base."""
        for name in ("_start", "main"):
            if name in self.symbols:
                return self.symbols[name]
        return self.text_base

    @property
    def num_instructions(self) -> int:
        return len(self.text) // 4
