"""Disassembler: instruction words back to assembly text.

The output round-trips through the assembler (modulo label names — branch
targets are rendered as relative word offsets) and is used by the pipeline
tracer and by humans debugging fault propagation.
"""

from __future__ import annotations

from repro.isa.encoding import DecodedInst, decode
from repro.isa.opcodes import Format, Op
from repro.isa.registers import reg_name

_BC_MNEMONIC = {
    Op.BEQ: "beq", Op.BNE: "bne", Op.BLT: "blt", Op.BGE: "bge",
    Op.BLTU: "bltu", Op.BGEU: "bgeu",
}
_BZ_MNEMONIC = {Op.BEQZ: "beqz", Op.BNEZ: "bnez"}


def _target(inst: DecodedInst, pc: int | None) -> str:
    if pc is None:
        return f".{inst.imm:+d}"
    return f"0x{(pc + 4 * inst.imm) & 0xFFFFFFFF:08x}"


def disassemble(word: int | DecodedInst, pc: int | None = None) -> str:
    """Render one instruction word as assembly text.

    With *pc* given, control-flow targets are shown as absolute addresses;
    otherwise as relative word offsets (``.+5``).
    """
    inst = word if isinstance(word, DecodedInst) else decode(word)
    if inst.illegal:
        return f".word 0x{inst.raw:08x}  ; illegal"
    op = inst.op
    assert op is not None
    name = op.name.lower()
    rd, rs1, rs2 = reg_name(inst.rd), reg_name(inst.rs1), reg_name(inst.rs2)

    if inst.fmt is Format.R:
        return f"{name} {rd}, {rs1}, {rs2}"
    if inst.fmt is Format.I:
        if op in (Op.MOVI, Op.LUI):
            return f"{name} {rd}, #{inst.imm}"
        if inst.is_load:
            return f"{name} {rd}, [{rs1}, #{inst.imm}]"
        if inst.is_store:
            return f"{name} {rd}, [{rs1}, #{inst.imm}]"
        return f"{name} {rd}, {rs1}, #{inst.imm}"
    if inst.fmt is Format.BC:
        return f"{_BC_MNEMONIC[op]} {rd}, {rs1}, {_target(inst, pc)}"
    if inst.fmt is Format.BZ:
        return f"{_BZ_MNEMONIC[op]} {rd}, {_target(inst, pc)}"
    if inst.fmt is Format.J:
        return f"{name} {_target(inst, pc)}"
    if inst.fmt is Format.R1:
        if op is Op.JALR:
            return f"jalr {rd}, {rs1}"
        return f"jr {rs1}"
    if inst.fmt is Format.SYS:
        return f"sys #{inst.imm}"
    return name  # NOP / HALT


def disassemble_program(text: bytes, base: int) -> list[str]:
    """Disassemble a .text section to ``addr: asm`` lines."""
    lines = []
    for offset in range(0, len(text) - len(text) % 4, 4):
        word = int.from_bytes(text[offset:offset + 4], "little")
        pc = base + offset
        lines.append(f"0x{pc:08x}: {disassemble(word, pc)}")
    return lines
