"""Architectural register model.

Sixteen 32-bit general-purpose registers, ARM-style aliases:

* ``r0``-``r3``   — argument / return registers (caller saved)
* ``r4``-``r11``  — temporaries (caller saved in our MiniC ABI)
* ``r12`` (fp)    — frame pointer (callee saved)
* ``r13`` (sp)    — stack pointer
* ``r14`` (lr)    — link register
* ``r15``         — plain GPR in this ISA (NOT the program counter); the
  compiler never allocates it, but a bit flip in a register field can name
  it, so the microarchitecture renames all 16 registers uniformly.
"""

from __future__ import annotations

NUM_ARCH_REGS = 16

FP = 12
SP = 13
LR = 14

_ALIASES = {12: "fp", 13: "sp", 14: "lr"}
_NAME_TO_NUM = {f"r{i}": i for i in range(NUM_ARCH_REGS)}
_NAME_TO_NUM.update({"fp": FP, "sp": SP, "lr": LR})


def reg_name(num: int) -> str:
    """Return the canonical assembly name for register *num*."""
    if not 0 <= num < NUM_ARCH_REGS:
        raise ValueError(f"register number out of range: {num}")
    return _ALIASES.get(num, f"r{num}")


def parse_reg(text: str) -> int:
    """Parse a register name (``r4``, ``sp``, ...) to its number.

    Raises :class:`ValueError` for anything that is not a register name.
    """
    try:
        return _NAME_TO_NUM[text.strip().lower()]
    except KeyError:
        raise ValueError(f"not a register name: {text!r}") from None
