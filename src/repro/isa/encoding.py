"""Binary encoding and decoding of instruction words.

Layout of a 32-bit instruction word (bit 31 = MSB)::

    [31:26] opcode (6 bits)
    [25:22] rd     (4 bits)   R / I / R1; first compare reg for BC formats
    [21:18] rs1    (4 bits)   R / I / R1; second compare reg for BC formats
    [17:14] rs2    (4 bits)   R format only
    [15:0]  imm16  (signed)   I / BC / SYS formats
    [25:0]  off26  (signed)   J format

``decode`` is *total*: every 32-bit value decodes to either an architected
instruction or an explicit illegal-instruction marker, so fault-corrupted
instruction words always produce a well-defined (possibly trapping) result.
Decoded instructions are immutable and cached per raw word, which makes the
fetch path cheap and lets all pipeline stages share one object.
"""

from __future__ import annotations

from repro.isa.opcodes import (
    AMOS,
    COND_BRANCHES,
    DEFAULT_LATENCY,
    DIRECT_JUMPS,
    FORMAT_OF,
    INDIRECT_JUMPS,
    LATENCY,
    LOADS,
    MEM_SIZE,
    STORES,
    Format,
    Op,
    is_valid_opcode,
)
from repro.isa.registers import LR

MASK32 = 0xFFFFFFFF


def _sext(value: int, bits: int) -> int:
    """Sign-extend the low *bits* of *value* to a Python int."""
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


class DecodedInst:
    """An immutable, fully decoded instruction.

    ``reads`` and ``writes`` express architectural register dataflow and are
    what the rename stage consumes; ``imm`` is already sign-extended (and,
    for control flow, expressed in *words* relative to the instruction's own
    pc, matching the assembler).
    """

    __slots__ = (
        "raw", "op", "fmt", "rd", "rs1", "rs2", "imm",
        "reads", "writes", "illegal",
        "is_load", "is_store", "is_amo", "mem_size", "is_cond_branch",
        "is_direct_jump", "is_indirect_jump", "is_control",
        "is_sys", "is_halt", "latency",
    )

    def __init__(self, raw: int) -> None:
        self.raw = raw & MASK32
        opcode = (raw >> 26) & 0x3F
        rd = (raw >> 22) & 0xF
        rs1 = (raw >> 18) & 0xF
        rs2 = (raw >> 14) & 0xF
        imm16 = _sext(raw, 16)
        off26 = _sext(raw, 26)

        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2

        if not is_valid_opcode(opcode):
            self._init_illegal()
            return

        op = Op(opcode)
        self.op = op
        self.fmt = FORMAT_OF[op]
        self.illegal = False
        self.is_load = op in LOADS
        self.is_store = op in STORES
        self.is_amo = op in AMOS
        self.mem_size = MEM_SIZE.get(op, 0)
        self.is_cond_branch = op in COND_BRANCHES
        self.is_direct_jump = op in DIRECT_JUMPS
        self.is_indirect_jump = op in INDIRECT_JUMPS
        self.is_control = (
            self.is_cond_branch or self.is_direct_jump or self.is_indirect_jump
        )
        self.is_sys = op is Op.SYS
        self.is_halt = op is Op.HALT
        self.latency = LATENCY.get(op, DEFAULT_LATENCY)

        fmt = self.fmt
        if fmt is Format.R:
            self.imm = 0
            self.reads = (rs1, rs2)
            self.writes = rd
        elif fmt is Format.I:
            # Logical immediates and LUI are zero-extended (MIPS-style) so
            # that 32-bit constants can be built with LUI+ORRI; arithmetic
            # immediates and memory offsets are sign-extended.
            if op in (Op.ANDI, Op.ORRI, Op.EORI, Op.LUI):
                self.imm = raw & 0xFFFF
            else:
                self.imm = imm16
            if op in (Op.MOVI, Op.LUI):
                self.reads = ()
                self.writes = rd
            elif self.is_store:
                self.reads = (rd, rs1)  # rd field carries the value register
                self.writes = None
            else:  # ALU-imm and loads
                self.reads = (rs1,)
                self.writes = rd
        elif fmt is Format.BC:
            self.imm = imm16
            self.reads = (rd, rs1)  # the two compare registers
            self.writes = None
        elif fmt is Format.BZ:
            self.imm = imm16
            self.reads = (rd,)  # the single compare register
            self.writes = None
        elif fmt is Format.J:
            self.imm = off26
            self.reads = ()
            self.writes = LR if op is Op.BL else None
        elif fmt is Format.R1:
            self.imm = 0
            self.reads = (rs1,)
            self.writes = rd if op is Op.JALR else None
        elif fmt is Format.SYS:
            self.imm = raw & 0xFFFF  # syscall numbers are unsigned
            self.reads = (0, 1, 2)   # r0-r2 carry syscall arguments
            self.writes = 0          # r0 carries the return value
        else:  # Format.NONE
            self.imm = 0
            self.reads = ()
            self.writes = None

    def _init_illegal(self) -> None:
        self.op = None
        self.fmt = Format.NONE
        self.imm = 0
        self.reads = ()
        self.writes = None
        self.illegal = True
        self.is_load = False
        self.is_store = False
        self.is_amo = False
        self.mem_size = 0
        self.is_cond_branch = False
        self.is_direct_jump = False
        self.is_indirect_jump = False
        self.is_control = False
        self.is_sys = False
        self.is_halt = False
        self.latency = DEFAULT_LATENCY

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.illegal:
            return f"<illegal 0x{self.raw:08x}>"
        return (
            f"<{self.op.name} rd={self.rd} rs1={self.rs1} rs2={self.rs2} "
            f"imm={self.imm}>"
        )


_DECODE_CACHE: dict[int, DecodedInst] = {}
_DECODE_CACHE_LIMIT = 1 << 16


def decode(raw: int) -> DecodedInst:
    """Decode a 32-bit word, caching the result per distinct raw value."""
    raw &= MASK32
    inst = _DECODE_CACHE.get(raw)
    if inst is None:
        if len(_DECODE_CACHE) >= _DECODE_CACHE_LIMIT:
            _DECODE_CACHE.clear()
        inst = DecodedInst(raw)
        _DECODE_CACHE[raw] = inst
    return inst


def encode(op: Op, rd: int = 0, rs1: int = 0, rs2: int = 0, imm: int = 0) -> int:
    """Encode an instruction to its 32-bit word.

    ``imm`` is interpreted per the opcode's format (16-bit signed for I/BC,
    26-bit signed for J, 16-bit unsigned for SYS) and range-checked.
    """
    for name, reg in (("rd", rd), ("rs1", rs1), ("rs2", rs2)):
        if not 0 <= reg < 16:
            raise ValueError(f"{name} out of range: {reg}")
    fmt = FORMAT_OF[op]
    word = (int(op) & 0x3F) << 26
    if fmt is Format.R:
        word |= (rd << 22) | (rs1 << 18) | (rs2 << 14)
    elif fmt in (Format.I, Format.BC, Format.BZ):
        # Accept the union of the signed and unsigned 16-bit ranges; the
        # decoder picks the interpretation per opcode.
        if not -(1 << 15) <= imm < (1 << 16):
            raise ValueError(f"imm16 out of range: {imm}")
        word |= (rd << 22) | (rs1 << 18) | (imm & 0xFFFF)
    elif fmt is Format.J:
        if not -(1 << 25) <= imm < (1 << 25):
            raise ValueError(f"off26 out of range: {imm}")
        word |= imm & 0x3FFFFFF
    elif fmt is Format.R1:
        word |= (rd << 22) | (rs1 << 18)
    elif fmt is Format.SYS:
        if not 0 <= imm < (1 << 16):
            raise ValueError(f"syscall number out of range: {imm}")
        word |= imm
    # Format.NONE carries no operands.
    return word
