"""Exception hierarchy shared across the repro packages.

Two families of errors exist in this project and must not be confused:

* **Tooling errors** (:class:`AsmError`, :class:`CompileError`,
  :class:`ConfigError`) indicate a bug in a workload program or in the way
  the library is being driven.  They are ordinary Python exceptions.

* **Simulator assertions** (:class:`SimAssertion`) correspond to the paper's
  *Assert* fault-effect class: the simulated machine reached a state the
  simulator itself cannot represent (e.g. a corrupted TLB entry produced a
  physical address outside the platform memory map).  Campaign code catches
  these and records the run as ``Assert``.

Architectural exceptions experienced by the simulated program (page fault,
illegal instruction, ...) are *not* Python exceptions; they are precise
events handled at commit time by :mod:`repro.cpu` and surface as the
``Crash`` fault-effect class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AsmError(ReproError):
    """An assembly source program could not be assembled."""


class CompileError(ReproError):
    """A MiniC source program could not be compiled."""


class ConfigError(ReproError):
    """An invalid simulator or campaign configuration was supplied."""


class SimAssertion(ReproError):
    """The simulator hit an internal invariant violation (paper class *Assert*).

    The canonical source is a fault-corrupted address translation that points
    outside the simulated platform's physical memory map, which the paper
    reports as the dominant Assert mechanism for TLB faults.
    """


class InjectionIncident(ReproError):
    """An *infrastructure* failure during one injection experiment.

    Unlike :class:`SimAssertion` (a deliberate, modelled fault effect), an
    incident means the injector or simulator itself misbehaved — an
    unexpected Python exception, a stuck cycle counter, a corrupted
    intermediate state the code was never written to handle.  The campaign
    supervisor (:mod:`repro.core.supervisor`) contains incidents by default,
    journalling a full repro bundle and moving on; in ``--strict`` mode it
    escalates them by raising this exception.
    """


class VerificationError(ReproError):
    """The verification subsystem (:mod:`repro.verify`) failed a check.

    Deliberately *not* a :class:`SimAssertion`: a simulator assertion is a
    modelled fault effect (the paper's *Assert* class), while a verification
    failure means the simulator and its independent ISA-level oracle
    disagree — a bug in the platform itself that must surface loudly, never
    be classified as a fault outcome.
    """


class DivergenceError(VerificationError):
    """The out-of-order core's committed state diverged from the oracle.

    Raised by :mod:`repro.verify.differential` at the first retired
    instruction whose (pc, encoding, register writeback, memory store)
    differs between the out-of-order system and the in-order ISA-level
    reference executor, or when their terminal states disagree.
    """


class InvariantViolation(VerificationError):
    """A microarchitectural invariant failed during simulation.

    Raised by :mod:`repro.verify.invariants` when a structural property the
    pipeline must maintain by construction (ROB program order, free-list /
    rename-map conservation, clean-cache-line coherence with the backing
    memory, TLB consistency with the page tables) is observed broken.
    """


class CampaignInterrupted(ReproError):
    """A campaign was asked to stop (Ctrl-C / stop event) and wound down.

    Raised by :func:`repro.core.campaign.run_cell` when its *stop* probe
    fires between samples, after flushing a mid-cell checkpoint so the
    interrupted cell resumes bit-identically.  The parallel executor uses
    this for graceful worker drain; it is not an error in the campaign
    itself.
    """


class WorkerCrash(InjectionIncident):
    """A parallel campaign worker process died outright.

    The parent turns the death into a journalled incident and reschedules
    the worker's in-flight cells (they resume from the last streamed
    checkpoint, so no samples are lost); this exception surfaces only when
    crashes repeat beyond the restart budget, which means the crash is
    deterministic and rescheduling cannot converge.
    """


class WorkerHang(InjectionIncident):
    """A parallel campaign worker stopped making progress.

    Raised conceptually (and journalled as kind ``worker-hang``) when a
    worker with in-flight cells goes silent past the resilience policy's
    hang timeout, or blows through a cell's wall-clock deadline, and does
    not respond to a soft cancel within the grace period.  The scheduler
    kills the worker and reschedules its cells from the last streamed
    checkpoint; the exception type exists for ``--strict`` escalation.
    """


class PoisonCell(InjectionIncident):
    """A cell repeatedly killed or hung every worker that touched it.

    After ``max_attempts`` failed executions the scheduler quarantines the
    cell (journalled as kind ``poison-cell``): whatever samples its last
    streamed checkpoint holds become the cell's result, the missing
    samples are counted as lost, and the campaign continues.  The
    exception surfaces only under ``--strict``/``--max-incidents``.
    """


class ChaosAbort(ReproError):
    """A chaos-harness event simulating a hard process death fired.

    Raised by the chaos store wrapper after deliberately tearing a
    journal append, at exactly the point where a real kill would have
    interrupted the write.  The chaos driver catches it, reopens the
    store from disk (as a restarted process would) and resumes.
    """


class WatchdogTimeout(InjectionIncident):
    """The per-injection step-count watchdog tripped.

    Raised when the simulator executes more pipeline steps than any legal
    run could need — the signature of an infra livelock where the cycle
    counter has stopped advancing, which the ordinary ``max_cycles`` bound
    can never catch.
    """


class IncidentBudgetExceeded(InjectionIncident):
    """A campaign recorded more incidents than its ``--max-incidents`` budget.

    Past this point the campaign's statistics can no longer be trusted
    (too many samples were lost to infra failures), so the supervisor
    aborts instead of silently degrading.
    """
