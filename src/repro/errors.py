"""Exception hierarchy shared across the repro packages.

Two families of errors exist in this project and must not be confused:

* **Tooling errors** (:class:`AsmError`, :class:`CompileError`,
  :class:`ConfigError`) indicate a bug in a workload program or in the way
  the library is being driven.  They are ordinary Python exceptions.

* **Simulator assertions** (:class:`SimAssertion`) correspond to the paper's
  *Assert* fault-effect class: the simulated machine reached a state the
  simulator itself cannot represent (e.g. a corrupted TLB entry produced a
  physical address outside the platform memory map).  Campaign code catches
  these and records the run as ``Assert``.

Architectural exceptions experienced by the simulated program (page fault,
illegal instruction, ...) are *not* Python exceptions; they are precise
events handled at commit time by :mod:`repro.cpu` and surface as the
``Crash`` fault-effect class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AsmError(ReproError):
    """An assembly source program could not be assembled."""


class CompileError(ReproError):
    """A MiniC source program could not be compiled."""


class ConfigError(ReproError):
    """An invalid simulator or campaign configuration was supplied."""


class SimAssertion(ReproError):
    """The simulator hit an internal invariant violation (paper class *Assert*).

    The canonical source is a fault-corrupted address translation that points
    outside the simulated platform's physical memory map, which the paper
    reports as the dominant Assert mechanism for TLB faults.
    """
